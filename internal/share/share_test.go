package share

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recache/internal/plan"
	"recache/internal/value"
)

// fakeProv is a controllable ScanProvider: nRecs single-int records, with
// optional hooks at scan start and between records (for gating scans at
// deterministic points) and a log of the needed sets each scan received.
type fakeProv struct {
	nRecs int

	mu        sync.Mutex
	scans     int
	neededLog [][]value.Path

	onScanStart func(scan int)          // called before the first record
	betweenRecs func(scan, nextRec int) // called before each record
	completes   atomic.Int64            // complete() invocations observed
}

func newFakeProv(nRecs int) *fakeProv { return &fakeProv{nRecs: nRecs} }

func (f *fakeProv) Schema() *value.Type { return value.TRecord(value.F("a", value.TInt)) }
func (f *fakeProv) NumRecords() int     { return f.nRecs }
func (f *fakeProv) SizeBytes() int64    { return int64(f.nRecs) * 10 }
func (f *fakeProv) ScanOffsets([]int64, []value.Path, plan.ScanFunc) error {
	return errors.New("fakeProv: ScanOffsets unused")
}

func (f *fakeProv) Scan(needed []value.Path, fn plan.ScanFunc) error {
	f.mu.Lock()
	f.scans++
	scan := f.scans
	f.neededLog = append(f.neededLog, needed)
	f.mu.Unlock()
	if f.onScanStart != nil {
		f.onScanStart(scan)
	}
	row := []value.Value{value.VNull}
	rec := value.Value{Kind: value.Record, L: row}
	for r := 0; r < f.nRecs; r++ {
		if f.betweenRecs != nil {
			f.betweenRecs(scan, r)
		}
		row[0] = value.VInt(int64(r))
		if err := fn(rec, int64(r)*10, func() error { f.completes.Add(1); return nil }); err != nil {
			return err
		}
	}
	return nil
}

func (f *fakeProv) numScans() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.scans
}

// counting consumer callback: counts records and remembers offsets seen.
func countingFn(n *atomic.Int64) plan.ScanFunc {
	return func(rec value.Value, off int64, complete func() error) error {
		n.Add(1)
		return nil
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// A lone consumer with no concurrent demand must bypass the coordinator:
// one private provider scan with exactly the consumer's own needed set,
// zero shared cycles.
func TestSingleConsumerBypass(t *testing.T) {
	f := newFakeProv(5)
	c := New(Config{Window: time.Hour}) // a window wait would hang the test
	need := []value.Path{{"a"}}
	var n atomic.Int64
	if err := c.Scan(f, need, countingFn(&n)); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 5 {
		t.Errorf("records seen = %d, want 5", n.Load())
	}
	if f.numScans() != 1 {
		t.Errorf("provider scans = %d, want 1", f.numScans())
	}
	if got := f.neededLog[0]; len(got) != 1 || got[0].String() != "a" {
		t.Errorf("bypass scan needed = %v, want the consumer's own [a]", got)
	}
	st := c.Stats()
	if st.PrivateScans != 1 || st.SharedScans != 0 {
		t.Errorf("stats = %+v, want 1 private / 0 shared", st)
	}
}

// While one raw scan is running, later arrivals must gather into ONE next
// cycle that performs exactly one additional provider scan, fanning the
// full file out to every consumer (a late arrival never observes a partial
// scan).
func TestConcurrentMissesShareOneScan(t *testing.T) {
	const followers = 8
	f := newFakeProv(20)
	gate := make(chan struct{})
	started := make(chan int, 4)
	f.onScanStart = func(scan int) {
		started <- scan
		if scan == 1 {
			<-gate // hold the first (bypass) scan so followers pile up
		}
	}
	c := New(Config{Window: time.Hour}) // rely on early seal, not the timer

	var wg sync.WaitGroup
	var firstN atomic.Int64
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := c.Scan(f, nil, countingFn(&firstN)); err != nil {
			t.Error(err)
		}
	}()
	<-started // scan 1 running (blocked on gate)

	counts := make([]atomic.Int64, followers)
	errs := make([]error, followers)
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Scan(f, nil, countingFn(&counts[i]))
		}(i)
	}
	waitFor(t, "all followers to gather", func() bool {
		waiting, _, _, _ := c.Status(f)
		return waiting == followers
	})
	close(gate) // scan 1 finishes → dataset idle → cycle seals early
	wg.Wait()

	if f.numScans() != 2 {
		t.Fatalf("provider scans = %d, want 2 (one bypass + one shared cycle)", f.numScans())
	}
	if firstN.Load() != 20 {
		t.Errorf("first consumer saw %d records, want 20", firstN.Load())
	}
	for i := 0; i < followers; i++ {
		if errs[i] != nil {
			t.Errorf("follower %d error: %v", i, errs[i])
		}
		if counts[i].Load() != 20 {
			t.Errorf("follower %d saw %d records, want the full 20", i, counts[i].Load())
		}
	}
	st := c.Stats()
	if st.SharedScans != 1 || st.SharedConsumers != followers || st.PrivateScans != 1 {
		t.Errorf("stats = %+v, want 1 shared cycle serving %d consumers + 1 private", st, followers)
	}
}

// An arrival while a SHARED cycle is mid-scan must land in the next cycle
// and see the whole file, never the tail of the running scan.
func TestLateArrivalLandsInNextCycle(t *testing.T) {
	f := newFakeProv(10)
	c := New(Config{Window: 20 * time.Millisecond})

	// Phase 1: make the dataset "hot" and run one shared cycle that we can
	// gate mid-scan.
	gate := make(chan struct{})
	var gateOnce sync.Once
	release := func() { gateOnce.Do(func() { close(gate) }) }
	defer release()
	midReached := make(chan struct{}, 4)
	f.betweenRecs = func(scan, rec int) {
		if scan == 2 && rec == 5 {
			midReached <- struct{}{}
			<-gate // hold the shared cycle at its halfway point
		}
	}

	startScan1 := make(chan struct{})
	scan1Running := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-startScan1
		}
	}

	var wg sync.WaitGroup
	var aN, bN, lateN atomic.Int64
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Scan(f, nil, countingFn(&aN)) }() // bypass, scan 1
	<-scan1Running
	wg.Add(1)
	var bErr error
	go func() { defer wg.Done(); bErr = c.Scan(f, nil, countingFn(&bN)) }() // gathers behind scan 1
	waitFor(t, "b to gather", func() bool { w, _, _, _ := c.Status(f); return w == 1 })
	close(startScan1) // scan 1 completes; b's cycle seals and starts scan 2

	<-midReached // scan 2 (the shared cycle) is halfway through, holding
	// Phase 2: the late arrival. The pending cycle is sealed and scanning;
	// this must open cycle 3, not attach to the running one.
	var lateErr error
	wg.Add(1)
	go func() { defer wg.Done(); lateErr = c.Scan(f, nil, countingFn(&lateN)) }()
	waitFor(t, "late arrival to gather", func() bool { w, _, _, _ := c.Status(f); return w == 1 })
	release() // let scan 2 finish; the late cycle then seals and runs scan 3
	wg.Wait()

	if bErr != nil || lateErr != nil {
		t.Fatalf("errors: b=%v late=%v", bErr, lateErr)
	}
	if f.numScans() != 3 {
		t.Errorf("provider scans = %d, want 3 (bypass, shared, late's own cycle)", f.numScans())
	}
	if lateN.Load() != 10 {
		t.Errorf("late arrival saw %d records, want the full 10 (never a partial scan)", lateN.Load())
	}
	if aN.Load() != 10 || bN.Load() != 10 {
		t.Errorf("earlier consumers saw %d/%d records, want 10/10", aN.Load(), bN.Load())
	}
}

// A consumer whose pipeline errors mid-fanout detaches with its own error;
// the shared scan continues and the other consumers still see every record.
func TestConsumerErrorDetachesWithoutPoisoningScan(t *testing.T) {
	f := newFakeProv(12)
	gate := make(chan struct{})
	scan1Running := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-gate
		}
	}
	c := New(Config{Window: time.Hour})

	var wg sync.WaitGroup
	var aN atomic.Int64
	wg.Add(1)
	go func() { defer wg.Done(); _ = c.Scan(f, nil, countingFn(&aN)) }()
	<-scan1Running

	boom := errors.New("boom")
	var badSeen, goodN atomic.Int64
	var badErr, goodErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		badErr = c.Scan(f, nil, func(rec value.Value, off int64, _ func() error) error {
			if badSeen.Add(1) == 3 {
				return boom
			}
			return nil
		})
	}()
	go func() { defer wg.Done(); goodErr = c.Scan(f, nil, countingFn(&goodN)) }()
	waitFor(t, "both followers to gather", func() bool { w, _, _, _ := c.Status(f); return w == 2 })
	close(gate)
	wg.Wait()

	if !errors.Is(badErr, boom) {
		t.Errorf("failing consumer error = %v, want boom", badErr)
	}
	if goodErr != nil {
		t.Errorf("healthy consumer error = %v, want nil", goodErr)
	}
	if goodN.Load() != 12 {
		t.Errorf("healthy consumer saw %d records, want 12 (scan not poisoned)", goodN.Load())
	}
	if badSeen.Load() != 3 {
		t.Errorf("failing consumer called %d times, want 3 (detached after error)", badSeen.Load())
	}
	if f.numScans() != 2 {
		t.Errorf("provider scans = %d, want 2", f.numScans())
	}
}

// A detached consumer is released immediately: its Scan returns the error
// while the shared scan is still streaming the rest of the file to the
// healthy consumers.
func TestFailedConsumerReleasedMidScan(t *testing.T) {
	f := newFakeProv(10)
	gate := make(chan struct{})
	scan1Running := make(chan struct{})
	badReturned := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-gate
		}
	}
	f.betweenRecs = func(scan, rec int) {
		if scan == 2 && rec == 5 {
			// The shared cycle holds here until the failed consumer's Scan
			// call has already returned — proving the early release.
			select {
			case <-badReturned:
			case <-time.After(10 * time.Second):
				t.Error("failed consumer not released while the shared scan was mid-flight")
			}
		}
	}
	c := New(Config{Window: time.Hour})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	<-scan1Running

	boom := errors.New("boom")
	var goodN atomic.Int64
	var goodErr error
	wg.Add(1)
	// The healthy consumer attaches first and becomes the cycle leader
	// (drives the scan); the failing consumer joins second, so it blocks on
	// its done channel — the release this test is about.
	go func() { defer wg.Done(); goodErr = c.Scan(f, nil, countingFn(&goodN)) }()
	waitFor(t, "leader to gather", func() bool { w, _, _, _ := c.Status(f); return w == 1 })
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := c.Scan(f, nil, func(value.Value, int64, func() error) error { return boom })
		if !errors.Is(err, boom) {
			t.Errorf("failing consumer error = %v, want boom", err)
		}
		close(badReturned)
	}()
	waitFor(t, "both followers to gather", func() bool { w, _, _, _ := c.Status(f); return w == 2 })
	close(gate)
	wg.Wait()

	if goodErr != nil || goodN.Load() != 10 {
		t.Errorf("healthy consumer: err=%v records=%d, want nil/10", goodErr, goodN.Load())
	}
}

// When every consumer in a cycle fails, the scan stops early instead of
// parsing the rest of the file for nobody; each consumer keeps its own
// pipeline error, not a coordinator-internal one.
func TestAllConsumersFailedStopsScan(t *testing.T) {
	f := newFakeProv(1000)
	gate := make(chan struct{})
	scan1Running := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-gate
		}
	}
	c := New(Config{Window: time.Hour})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	<-scan1Running

	boom := errors.New("boom")
	var seen atomic.Int64
	var err error
	wg.Add(1)
	go func() {
		defer wg.Done()
		err = c.Scan(f, nil, func(value.Value, int64, func() error) error {
			seen.Add(1)
			return boom
		})
	}()
	waitFor(t, "follower to gather", func() bool { w, _, _, _ := c.Status(f); return w == 1 })
	close(gate)
	wg.Wait()

	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want the consumer's own boom", err)
	}
	if seen.Load() != 1 {
		t.Errorf("consumer called %d times, want 1 (scan aborted)", seen.Load())
	}
}

// The shared scan must request the UNION of the consumers' needed fields —
// and all fields as soon as any consumer needs everything.
func TestSharedScanUsesUnionOfNeededFields(t *testing.T) {
	for _, tc := range []struct {
		name    string
		neededs [][]value.Path
		want    string // "" means nil (all fields)
	}{
		{"disjoint", [][]value.Path{{{"a"}}, {{"b"}}}, "a,b"},
		{"one-wants-all", [][]value.Path{{{"a"}}, nil}, ""},
		{"both-empty", [][]value.Path{{}, {}}, "<none>"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f := newFakeProv(3)
			gate := make(chan struct{})
			scan1Running := make(chan struct{})
			f.onScanStart = func(scan int) {
				if scan == 1 {
					close(scan1Running)
					<-gate
				}
			}
			c := New(Config{Window: time.Hour})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				_ = c.Scan(f, []value.Path{{"a"}}, func(value.Value, int64, func() error) error { return nil })
			}()
			<-scan1Running
			for _, need := range tc.neededs {
				need := need
				wg.Add(1)
				go func() {
					defer wg.Done()
					_ = c.Scan(f, need, func(value.Value, int64, func() error) error { return nil })
				}()
			}
			waitFor(t, "followers to gather", func() bool { w, _, _, _ := c.Status(f); return w == len(tc.neededs) })
			close(gate)
			wg.Wait()

			got := f.neededLog[1] // the shared cycle's scan
			var gotStr string
			switch {
			case got == nil:
				gotStr = ""
			case len(got) == 0:
				gotStr = "<none>"
			default:
				// Union order depends on attach order; compare as a set.
				parts := make([]string, len(got))
				for i, p := range got {
					parts[i] = p.String()
				}
				sort.Strings(parts)
				gotStr = strings.Join(parts, ",")
			}
			if gotStr != tc.want {
				t.Errorf("shared scan needed = %q, want %q", gotStr, tc.want)
			}
		})
	}
}

// After a burst, the burst memory keeps batching: a fresh wave of arrivals
// with NO scan in flight still coalesces into one windowed cycle instead of
// racing into private scans.
func TestBurstMemoryBatchesNextWave(t *testing.T) {
	f := newFakeProv(10)
	gate := make(chan struct{})
	scan1Running := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-gate
		}
	}
	c := New(Config{Window: 100 * time.Millisecond, HotFor: time.Hour})

	// Wave 1 establishes the burst memory.
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	<-scan1Running
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	waitFor(t, "wave-1 follower to gather", func() bool { w, _, _, _ := c.Status(f); return w == 1 })
	close(gate)
	wg.Wait()
	scansAfterWave1 := f.numScans() // 2

	// Wave 2: dataset idle, burst memory hot. The whole wave must share one
	// windowed cycle.
	const n = 6
	counts := make([]atomic.Int64, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { defer wg.Done(); _ = c.Scan(f, nil, countingFn(&counts[i])) }(i)
	}
	wg.Wait()
	if got := f.numScans() - scansAfterWave1; got != 1 {
		t.Errorf("wave-2 provider scans = %d, want 1 (burst memory batches the wave)", got)
	}
	for i := range counts {
		if counts[i].Load() != 10 {
			t.Errorf("wave-2 consumer %d saw %d records, want 10", i, counts[i].Load())
		}
	}
}

// A panic in one consumer's pipeline (unwinding the leader's goroutine)
// must not leave co-consumers blocked forever or leak the active-scan
// count: everyone is released with an error and the dataset returns to the
// bypass fast path.
func TestConsumerPanicReleasesCoConsumers(t *testing.T) {
	f := newFakeProv(10)
	gate := make(chan struct{})
	scan1Running := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-gate
		}
	}
	c := New(Config{Window: time.Hour, HotFor: time.Nanosecond})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	<-scan1Running

	// Leader (attaches first, drives the scan) is healthy; a joiner panics.
	var leaderPanic atomic.Value
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				leaderPanic.Store(fmt.Sprint(r))
			}
		}()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	waitFor(t, "leader to gather", func() bool { w, _, _, _ := c.Status(f); return w == 1 })
	var joinerErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		defer func() { recover() }() // its own panic unwinds the leader, not here
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { panic("pipeline bug") })
	}()
	go func() {
		defer wg.Done()
		joinerErr = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	waitFor(t, "joiners to gather", func() bool { w, _, _, _ := c.Status(f); return w == 3 })
	close(gate)
	wg.Wait()

	if leaderPanic.Load() == nil {
		t.Error("pipeline panic did not propagate to the leader's caller")
	}
	if !errors.Is(joinerErr, errCycleAborted) {
		t.Errorf("healthy joiner error = %v, want errCycleAborted", joinerErr)
	}
	// The active count must have recovered: a fresh lone scan bypasses.
	before := c.Stats().PrivateScans
	if err := c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().PrivateScans; got != before+1 {
		t.Errorf("post-panic scan did not bypass (private scans %d → %d); active count leaked", before, got)
	}
}

// Burst memory is refreshed when a sharing cycle COMPLETES, not only at
// arrival: back-to-back bursts on a file whose parse outlasts HotFor keep
// batching instead of decaying to a private scan + second cycle.
func TestBurstMemoryRefreshedAtCycleCompletion(t *testing.T) {
	f := newFakeProv(10)
	// Each scan takes ~10 × 15ms = 150ms, comfortably longer than HotFor.
	f.betweenRecs = func(scan, rec int) { time.Sleep(15 * time.Millisecond) }
	c := New(Config{Window: 50 * time.Millisecond, HotFor: 60 * time.Millisecond})

	burst := func() {
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				if err := c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil }); err != nil {
					t.Error(err)
				}
			}()
		}
		wg.Wait()
	}
	burst() // wave 1: bypass + one shared cycle (2 scans), stamps burst memory at completion
	scansAfter1 := f.numScans()
	burst() // wave 2 arrives ~150ms after wave 1's *arrivals*, but HotFor after its *completion*
	if got := f.numScans() - scansAfter1; got != 1 {
		t.Errorf("wave-2 scans = %d, want 1 (burst memory must survive a parse longer than HotFor)", got)
	}
}

// A solo cycle (the window gathered nobody) clears the burst memory: the
// first lone query after a burst pays the window once; the next one takes
// the bypass fast path again.
func TestSoloCycleDecaysBurstMemory(t *testing.T) {
	const window = 500 * time.Millisecond
	f := newFakeProv(5)
	gate := make(chan struct{})
	scan1Running := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-gate
		}
	}
	c := New(Config{Window: window, HotFor: time.Hour})

	// Establish burst memory with one genuine shared cycle.
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	<-scan1Running
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	waitFor(t, "the follower to gather", func() bool { w, _, _, _ := c.Status(f); return w == 1 })
	close(gate)
	wg.Wait()

	solo := func() time.Duration {
		start := time.Now()
		if err := c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil }); err != nil {
			t.Fatal(err)
		}
		return time.Since(start)
	}
	if d := solo(); d < window {
		t.Errorf("first lone query after the burst took %v, want >= the %v window (solo cycle)", d, window)
	}
	if d := solo(); d >= window/2 {
		t.Errorf("second lone query took %v; the empty window should have cleared burst memory (bypass)", d)
	}
}

// complete() is memoized per record: many eager consumers sharing a cycle
// parse the skipped fields once, not once each.
func TestCompleteMemoizedAcrossConsumers(t *testing.T) {
	f := newFakeProv(7)
	gate := make(chan struct{})
	scan1Running := make(chan struct{})
	f.onScanStart = func(scan int) {
		if scan == 1 {
			close(scan1Running)
			<-gate
		}
	}
	c := New(Config{Window: time.Hour})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = c.Scan(f, nil, func(value.Value, int64, func() error) error { return nil })
	}()
	<-scan1Running

	const followers = 4
	completer := func(rec value.Value, off int64, complete func() error) error { return complete() }
	for i := 0; i < followers; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); _ = c.Scan(f, []value.Path{{"a"}}, completer) }()
	}
	waitFor(t, "followers to gather", func() bool { w, _, _, _ := c.Status(f); return w == followers })
	f.completes.Store(0)
	close(gate)
	wg.Wait()

	if got := f.completes.Load(); got != 7 {
		t.Errorf("provider complete() calls = %d, want 7 (once per record, memoized across %d consumers)", got, followers)
	}
}

// A nil coordinator degrades to a private provider scan.
func TestNilCoordinator(t *testing.T) {
	f := newFakeProv(4)
	var c *Coordinator
	var n atomic.Int64
	if err := c.Scan(f, nil, countingFn(&n)); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 4 || f.numScans() != 1 {
		t.Errorf("records=%d scans=%d, want 4/1", n.Load(), f.numScans())
	}
	if st := c.Stats(); st != (Stats{}) {
		t.Errorf("nil coordinator stats = %+v, want zero", st)
	}
}

// Stress: random waves of concurrent scans under -race; every consumer
// always sees the complete file.
func TestStressManyWaves(t *testing.T) {
	f := newFakeProv(50)
	// Yield mid-scan so waves genuinely overlap even on GOMAXPROCS=1
	// (a non-blocking in-memory scan would otherwise run to completion
	// before the next goroutine is scheduled, and nothing would share).
	f.betweenRecs = func(scan, rec int) {
		if rec%10 == 0 {
			time.Sleep(50 * time.Microsecond)
		}
	}
	c := New(Config{Window: time.Millisecond})
	var wg sync.WaitGroup
	errCh := make(chan error, 200)
	for wave := 0; wave < 10; wave++ {
		for i := 0; i < 8; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var n atomic.Int64
				if err := c.Scan(f, nil, countingFn(&n)); err != nil {
					errCh <- err
					return
				}
				if n.Load() != 50 {
					errCh <- fmt.Errorf("saw %d records, want 50", n.Load())
				}
			}()
		}
		time.Sleep(time.Duration(wave%3) * time.Millisecond)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if f.numScans() >= 80 {
		t.Errorf("provider scans = %d for 80 consumers; coordinator shared nothing", f.numScans())
	}
}
