// Package sqlparse implements the SQL subset ReCache's front end accepts:
// select-project-aggregate and select-project-join queries with conjunctive
// range predicates — the query shapes of the paper's evaluation (§6):
//
//	SELECT SUM(l_extendedprice), COUNT(*)
//	FROM lineitem
//	WHERE l_quantity BETWEEN 10 AND 20 AND l_shipdate < 19981201
//
//	SELECT AVG(total) FROM orders JOIN lineitem ON okey = l_orderkey
//	WHERE total > 1000
//
//	SELECT SUM(lineitems.l_quantity) FROM orderLineitems    -- nested path
//	WHERE lineitems.l_extendedprice < 5000 GROUP BY o_orderpriority
//
// Dotted identifiers address nested fields; referencing a field under a
// repeated (list) field makes the planner unnest the list.
package sqlparse

import (
	"fmt"
	"strings"
)

type tokKind uint8

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokSymbol // ( ) , * = < > <= >= <> + - /
	tokKeyword
)

var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "AND": true, "OR": true,
	"NOT": true, "BETWEEN": true, "JOIN": true, "ON": true, "GROUP": true,
	"BY": true, "AS": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true, "TRUE": true, "FALSE": true,
}

type token struct {
	kind tokKind
	text string // keywords upper-cased; others verbatim
	pos  int
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(c):
			l.pos++
			for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
				l.pos++
			}
			word := l.src[start:l.pos]
			up := strings.ToUpper(word)
			if keywords[up] {
				l.toks = append(l.toks, token{kind: tokKeyword, text: up, pos: start})
			} else {
				l.toks = append(l.toks, token{kind: tokIdent, text: word, pos: start})
			}
		case c >= '0' && c <= '9':
			l.pos++
			for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.' ||
				l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
				// Don't swallow a dotted identifier suffix like 1.x.
				if l.src[l.pos] == '.' && l.pos+1 < len(l.src) && !isDigit(l.src[l.pos+1]) {
					break
				}
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokNumber, text: l.src[start:l.pos], pos: start})
		case c == '\'':
			l.pos++
			var sb strings.Builder
			for l.pos < len(l.src) && l.src[l.pos] != '\'' {
				if l.src[l.pos] == '\\' && l.pos+1 < len(l.src) {
					l.pos++
				}
				sb.WriteByte(l.src[l.pos])
				l.pos++
			}
			if l.pos >= len(l.src) {
				return nil, fmt.Errorf("sqlparse: unterminated string at %d", start)
			}
			l.pos++ // closing quote
			l.toks = append(l.toks, token{kind: tokString, text: sb.String(), pos: start})
		case c == '<' || c == '>':
			l.pos++
			if l.pos < len(l.src) && (l.src[l.pos] == '=' || (c == '<' && l.src[l.pos] == '>')) {
				l.pos++
			}
			l.toks = append(l.toks, token{kind: tokSymbol, text: l.src[start:l.pos], pos: start})
		case strings.IndexByte("(),*=+-/", c) >= 0:
			l.pos++
			l.toks = append(l.toks, token{kind: tokSymbol, text: string(c), pos: start})
		default:
			return nil, fmt.Errorf("sqlparse: unexpected character %q at %d", c, start)
		}
	}
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		switch l.src[l.pos] {
		case ' ', '\t', '\n', '\r':
			l.pos++
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || isDigit(c) || c == '.'
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }
