package sqlparse

import (
	"fmt"
	"strconv"
	"strings"

	"recache/internal/expr"
	"recache/internal/value"
)

// SelectItem is one output of the SELECT list: an aggregate over a column
// (or *), or a plain column reference.
type SelectItem struct {
	Agg  string // "", "count", "sum", "avg", "min", "max"
	Star bool   // COUNT(*)
	Col  string // dotted column name ("" when Star)
	As   string // output name (defaults derived by the planner)
}

// JoinClause is one explicit JOIN ... ON left = right.
type JoinClause struct {
	Table    string
	LeftCol  string
	RightCol string
}

// Query is the parsed AST.
type Query struct {
	Select  []SelectItem
	Tables  []string // FROM list (comma-separated tables)
	Joins   []JoinClause
	Where   expr.Expr
	GroupBy []string
}

// Parse parses one SQL statement of the supported subset.
func Parse(src string) (*Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, src: src}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	if !p.atEOF() {
		return nil, p.errf("unexpected trailing input %q", p.peek().text)
	}
	return q, nil
}

type parser struct {
	toks []token
	i    int
	src  string
}

func (p *parser) peek() token { return p.toks[p.i] }
func (p *parser) next() token { t := p.toks[p.i]; p.i++; return t }
func (p *parser) atEOF() bool { return p.peek().kind == tokEOF }
func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sqlparse: %s (near offset %d)", fmt.Sprintf(format, args...), p.peek().pos)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peek().kind == tokKeyword && p.peek().text == kw {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return p.errf("expected %s, got %q", kw, p.peek().text)
	}
	return nil
}

func (p *parser) acceptSymbol(sym string) bool {
	if p.peek().kind == tokSymbol && p.peek().text == sym {
		p.i++
		return true
	}
	return false
}

func (p *parser) expectSymbol(sym string) error {
	if !p.acceptSymbol(sym) {
		return p.errf("expected %q, got %q", sym, p.peek().text)
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	if p.peek().kind != tokIdent {
		return "", p.errf("expected identifier, got %q", p.peek().text)
	}
	return p.next().text, nil
}

func (p *parser) parseQuery() (*Query, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	q := &Query{}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return nil, err
		}
		q.Select = append(q.Select, *item)
		if !p.acceptSymbol(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	tbl, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	q.Tables = append(q.Tables, tbl)
	for {
		if p.acceptSymbol(",") {
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.Tables = append(q.Tables, t)
			continue
		}
		if p.acceptKeyword("JOIN") {
			t, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectKeyword("ON"); err != nil {
				return nil, err
			}
			l, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if err := p.expectSymbol("="); err != nil {
				return nil, err
			}
			r, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.Tables = append(q.Tables, t)
			q.Joins = append(q.Joins, JoinClause{Table: t, LeftCol: l, RightCol: r})
			continue
		}
		break
	}
	if p.acceptKeyword("WHERE") {
		w, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = w
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			c, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			q.GroupBy = append(q.GroupBy, c)
			if !p.acceptSymbol(",") {
				break
			}
		}
	}
	return q, nil
}

var aggKeywords = map[string]string{
	"COUNT": "count", "SUM": "sum", "AVG": "avg", "MIN": "min", "MAX": "max",
}

func (p *parser) parseSelectItem() (*SelectItem, error) {
	t := p.peek()
	if t.kind == tokKeyword {
		if agg, ok := aggKeywords[t.text]; ok {
			p.next()
			if err := p.expectSymbol("("); err != nil {
				return nil, err
			}
			item := &SelectItem{Agg: agg}
			if p.acceptSymbol("*") {
				if agg != "count" {
					return nil, p.errf("%s(*) not supported", strings.ToUpper(agg))
				}
				item.Star = true
			} else {
				col, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Col = col
			}
			if err := p.expectSymbol(")"); err != nil {
				return nil, err
			}
			if p.acceptKeyword("AS") {
				as, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.As = as
			}
			return item, nil
		}
	}
	col, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	item := &SelectItem{Col: col}
	if p.acceptKeyword("AS") {
		as, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		item.As = as
	}
	return item, nil
}

// parseOr := parseAnd (OR parseAnd)*
func (p *parser) parseOr() (expr.Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = expr.Or(left, right)
	}
	return left, nil
}

// parseAnd := parseNot (AND parseNot)*
func (p *parser) parseAnd() (expr.Expr, error) {
	left, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for {
		// BETWEEN consumes its own AND, so only accept AND followed by a
		// predicate (not inside an active BETWEEN: handled in parseCmp).
		if !p.acceptKeyword("AND") {
			return left, nil
		}
		right, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		left = expr.And(left, right)
	}
}

func (p *parser) parseNot() (expr.Expr, error) {
	if p.acceptKeyword("NOT") {
		inner, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &expr.Not{E: inner}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (expr.Expr, error) {
	if p.acceptSymbol("(") {
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSymbol(")"); err != nil {
			return nil, err
		}
		return inner, nil
	}
	return p.parseCmp()
}

var cmpOps = map[string]expr.Op{
	"=": expr.OpEq, "<>": expr.OpNe, "<": expr.OpLt, "<=": expr.OpLe,
	">": expr.OpGt, ">=": expr.OpGe,
}

func (p *parser) parseCmp() (expr.Expr, error) {
	left, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.acceptKeyword("BETWEEN") {
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return expr.Between(left, lo, hi), nil
	}
	t := p.peek()
	if t.kind == tokSymbol {
		if op, ok := cmpOps[t.text]; ok {
			p.next()
			right, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			return expr.Cmp(op, left, right), nil
		}
	}
	// A bare boolean operand (e.g. a boolean column or TRUE).
	return left, nil
}

func (p *parser) parseAdd() (expr.Expr, error) {
	left, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = expr.Cmp(expr.OpAdd, left, r)
		case p.acceptSymbol("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			left = expr.Cmp(expr.OpSub, left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseMul() (expr.Expr, error) {
	left, err := p.parseAtom()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptSymbol("*"):
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			left = expr.Cmp(expr.OpMul, left, r)
		case p.acceptSymbol("/"):
			r, err := p.parseAtom()
			if err != nil {
				return nil, err
			}
			left = expr.Cmp(expr.OpDiv, left, r)
		default:
			return left, nil
		}
	}
}

func (p *parser) parseAtom() (expr.Expr, error) {
	t := p.peek()
	switch {
	case t.kind == tokNumber:
		p.next()
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad number %q", t.text)
			}
			return expr.L(f), nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad number %q", t.text)
		}
		return expr.L(n), nil
	case t.kind == tokString:
		p.next()
		return expr.L(t.text), nil
	case t.kind == tokKeyword && t.text == "TRUE":
		p.next()
		return expr.L(true), nil
	case t.kind == tokKeyword && t.text == "FALSE":
		p.next()
		return expr.L(false), nil
	case t.kind == tokSymbol && t.text == "-":
		p.next()
		inner, err := p.parseAtom()
		if err != nil {
			return nil, err
		}
		if l, ok := inner.(*expr.Lit); ok {
			if l.V.Kind == value.Int {
				return expr.L(-l.V.I), nil
			}
			return expr.L(-l.V.AsFloat()), nil
		}
		return expr.Cmp(expr.OpSub, expr.L(int64(0)), inner), nil
	case t.kind == tokIdent:
		p.next()
		return expr.C(t.text), nil
	}
	return nil, p.errf("expected operand, got %q", t.text)
}
