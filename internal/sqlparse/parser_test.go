package sqlparse

import (
	"testing"

	"recache/internal/expr"
)

func TestParseSelectProjectAggregate(t *testing.T) {
	q, err := Parse(`SELECT SUM(l_extendedprice) AS s, COUNT(*), AVG(l_quantity)
		FROM lineitem
		WHERE l_quantity BETWEEN 10 AND 20 AND l_shipdate < 19981201`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Select) != 3 {
		t.Fatalf("select items = %d", len(q.Select))
	}
	if q.Select[0].Agg != "sum" || q.Select[0].Col != "l_extendedprice" || q.Select[0].As != "s" {
		t.Errorf("item0 = %+v", q.Select[0])
	}
	if q.Select[1].Agg != "count" || !q.Select[1].Star {
		t.Errorf("item1 = %+v", q.Select[1])
	}
	if len(q.Tables) != 1 || q.Tables[0] != "lineitem" {
		t.Errorf("tables = %v", q.Tables)
	}
	conj := expr.Conjuncts(q.Where)
	if len(conj) != 3 { // between expands to two conjuncts
		t.Errorf("conjuncts = %d: %s", len(conj), q.Where.Canonical())
	}
}

func TestParseJoin(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM orders JOIN lineitem ON o_orderkey = l_orderkey
		WHERE o_totalprice > 1000.5`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 || len(q.Joins) != 1 {
		t.Fatalf("tables = %v joins = %v", q.Tables, q.Joins)
	}
	j := q.Joins[0]
	if j.Table != "lineitem" || j.LeftCol != "o_orderkey" || j.RightCol != "l_orderkey" {
		t.Errorf("join = %+v", j)
	}
}

func TestParseCommaTables(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM a, b WHERE x = y AND z > 1`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Tables) != 2 {
		t.Errorf("tables = %v", q.Tables)
	}
}

func TestParseGroupBy(t *testing.T) {
	q, err := Parse(`SELECT grp, COUNT(*) FROM t GROUP BY grp`)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0] != "grp" {
		t.Errorf("group by = %v", q.GroupBy)
	}
	if q.Select[0].Agg != "" || q.Select[0].Col != "grp" {
		t.Errorf("item0 = %+v", q.Select[0])
	}
}

func TestParseNestedPaths(t *testing.T) {
	q, err := Parse(`SELECT SUM(lineitems.l_quantity) FROM orderLineitems
		WHERE lineitems.l_extendedprice < 5000`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Select[0].Col != "lineitems.l_quantity" {
		t.Errorf("nested col = %q", q.Select[0].Col)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE NOT (a < 1 OR b >= 2) AND c = 'x'`)
	if err != nil {
		t.Fatal(err)
	}
	want := q.Where.Canonical()
	if want == "" {
		t.Fatal("empty canonical")
	}
	conj := expr.Conjuncts(q.Where)
	if len(conj) != 2 {
		t.Errorf("conjuncts = %d", len(conj))
	}
}

func TestParseArithmetic(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE a * 2 + 1 < b - 3`)
	if err != nil {
		t.Fatal(err)
	}
	// Canonicalization sorts commutative operands: a*2 renders as (2*a).
	c := q.Where.Canonical()
	if c != "(((2*a)+1)<(b-3))" {
		t.Errorf("canonical = %s", c)
	}
}

func TestParseNegativeNumbers(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE a > -5 AND b < -2.5`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Fatal("nil where")
	}
}

func TestParseStringsAndBooleans(t *testing.T) {
	q, err := Parse(`SELECT COUNT(*) FROM t WHERE s = 'hello world' AND flag = TRUE`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Fatal("nil where")
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	if _, err := Parse(`select count(*) from t where a between 1 and 2 group by a`); err != nil {
		t.Error(err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT`,
		`SELECT FROM t`,
		`SELECT COUNT(* FROM t`,
		`SELECT SUM(*) FROM t`,
		`SELECT a FROM`,
		`SELECT a FROM t WHERE`,
		`SELECT a FROM t WHERE a <`,
		`SELECT a FROM t GROUP`,
		`SELECT a FROM t JOIN u`,
		`SELECT a FROM t JOIN u ON a`,
		`SELECT a FROM t trailing junk !`,
		`SELECT a FROM t WHERE s = 'unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseEquivalentPredicatesCanonicalize(t *testing.T) {
	q1, err := Parse(`SELECT COUNT(*) FROM t WHERE a >= 1 AND a <= 5`)
	if err != nil {
		t.Fatal(err)
	}
	q2, err := Parse(`SELECT COUNT(*) FROM t WHERE a BETWEEN 1 AND 5`)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Where.Canonical() != q2.Where.Canonical() {
		t.Errorf("BETWEEN and >=/<= should canonicalize equally:\n%s\n%s",
			q1.Where.Canonical(), q2.Where.Canonical())
	}
}
