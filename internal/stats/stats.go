// Package stats provides the cost-instrumentation machinery ReCache uses to
// drive its caching decisions: sampled timers that measure per-record
// operator costs on a small random subset of records (§5.1, "Minimizing Cost
// Monitoring Overhead"), accumulators for the benefit-metric components, and
// CDF/percentile helpers for the evaluation harness.
package stats

import (
	"sort"
	"time"
)

// SampleShift controls the default sampling rate: one record in
// 2^SampleShift (128 ≈ the paper's "less than 1% of records").
const SampleShift = 7

// Clock abstracts time for tests. The default is the real monotonic clock.
type Clock func() time.Time

// SampledTimer estimates the total time spent in a repeated per-record
// operation by timing a deterministic pseudo-random subset of invocations
// and scaling up. Determinism keeps runs reproducible; the xorshift hash
// decorrelates the sampled subset from periodic patterns in the data.
//
// The zero value is not usable; call NewSampledTimer.
type SampledTimer struct {
	clock      Clock
	mask       uint64
	scale      int64
	count      int64 // total invocations
	sampled    int64 // sampled invocations
	sampledDur int64 // nanos across sampled invocations
	state      uint64
	pending    time.Time
	active     bool
}

// NewSampledTimer creates a timer sampling one in 2^shift calls.
// shift == 0 times every call (used by the ablation benchmarks).
func NewSampledTimer(shift uint, clock Clock) *SampledTimer {
	if clock == nil {
		clock = time.Now
	}
	return &SampledTimer{
		clock: clock,
		mask:  (uint64(1) << shift) - 1,
		scale: int64(1) << shift,
		state: 0x9e3779b97f4a7c15,
	}
}

// next advances the xorshift state.
func (t *SampledTimer) next() uint64 {
	t.state ^= t.state << 13
	t.state ^= t.state >> 7
	t.state ^= t.state << 17
	return t.state
}

// Begin marks the start of one per-record operation. It returns true when
// this invocation is being timed; the matching End must then be called.
// Unsampled invocations are counted but incur no clock read.
func (t *SampledTimer) Begin() bool {
	t.count++
	if t.next()&t.mask != 0 {
		return false
	}
	t.pending = t.clock()
	t.active = true
	return true
}

// End completes a sampled invocation started by Begin.
func (t *SampledTimer) End() {
	if !t.active {
		return
	}
	t.sampledDur += int64(t.clock().Sub(t.pending))
	t.sampled++
	t.active = false
}

// Count returns the total number of invocations observed.
func (t *SampledTimer) Count() int64 { return t.count }

// EstimatedTotal extrapolates the total time across all invocations.
func (t *SampledTimer) EstimatedTotal() time.Duration {
	if t.sampled == 0 {
		return 0
	}
	avg := float64(t.sampledDur) / float64(t.sampled)
	return time.Duration(avg * float64(t.count))
}

// Reset clears all accumulated state, keeping the sampling rate.
func (t *SampledTimer) Reset() {
	t.count, t.sampled, t.sampledDur, t.active = 0, 0, 0, false
}

// Accumulator tracks a simple sum of durations with explicit Add calls,
// for coarse-grained (per-operator, per-query) costs that do not need
// sampling.
type Accumulator struct {
	total time.Duration
	n     int64
}

// Add accumulates one observation.
func (a *Accumulator) Add(d time.Duration) {
	a.total += d
	a.n++
}

// Total returns the accumulated duration.
func (a *Accumulator) Total() time.Duration { return a.total }

// N returns the number of observations.
func (a *Accumulator) N() int64 { return a.n }

// Mean returns the average observation (0 if none).
func (a *Accumulator) Mean() time.Duration {
	if a.n == 0 {
		return 0
	}
	return a.total / time.Duration(a.n)
}

// CDF summarizes a sample of float64 observations.
type CDF struct {
	sorted []float64
}

// NewCDF copies and sorts the observations.
func NewCDF(xs []float64) *CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return &CDF{sorted: s}
}

// N returns the number of observations.
func (c *CDF) N() int { return len(c.sorted) }

// Percentile returns the value at quantile q in [0,1] (nearest-rank).
func (c *CDF) Percentile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	idx := int(q*float64(len(c.sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(c.sorted) {
		idx = len(c.sorted) - 1
	}
	return c.sorted[idx]
}

// FractionBelow returns the fraction of observations <= x.
func (c *CDF) FractionBelow(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	i := sort.SearchFloat64s(c.sorted, x)
	for i < len(c.sorted) && c.sorted[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.sorted))
}

// Mean returns the arithmetic mean of the observations.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var s float64
	for _, x := range c.sorted {
		s += x
	}
	return s / float64(len(c.sorted))
}

// Steps returns (x, cumulative fraction) pairs suitable for plotting the
// CDF as the paper's figures do.
func (c *CDF) Steps() ([]float64, []float64) {
	xs := make([]float64, len(c.sorted))
	ys := make([]float64, len(c.sorted))
	for i, x := range c.sorted {
		xs[i] = x
		ys[i] = float64(i+1) / float64(len(c.sorted))
	}
	return xs, ys
}
