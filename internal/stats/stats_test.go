package stats

import (
	"testing"
	"time"
)

// fakeClock advances a fixed step per call.
func fakeClock(step time.Duration) Clock {
	var now time.Time
	return func() time.Time {
		now = now.Add(step)
		return now
	}
}

func TestSampledTimerEstimates(t *testing.T) {
	// Every sampled op appears to take 1ms (two clock reads, 500µs apart).
	tm := NewSampledTimer(3, fakeClock(500*time.Microsecond)) // sample 1/8
	const n = 8000
	sampled := 0
	for i := 0; i < n; i++ {
		if tm.Begin() {
			sampled++
			tm.End()
		}
	}
	if tm.Count() != n {
		t.Fatalf("Count = %d", tm.Count())
	}
	// Sampling is pseudo-random; expect roughly n/8 samples.
	if sampled < n/16 || sampled > n/4 {
		t.Fatalf("sampled %d of %d, expected ≈%d", sampled, n, n/8)
	}
	est := tm.EstimatedTotal()
	want := time.Duration(n) * 500 * time.Microsecond
	if est < want/2 || est > want*2 {
		t.Errorf("EstimatedTotal = %v, want ≈%v", est, want)
	}
	tm.Reset()
	if tm.Count() != 0 || tm.EstimatedTotal() != 0 {
		t.Error("Reset did not clear state")
	}
}

func TestSampledTimerShiftZeroTimesEverything(t *testing.T) {
	tm := NewSampledTimer(0, fakeClock(time.Millisecond))
	for i := 0; i < 10; i++ {
		if !tm.Begin() {
			t.Fatal("shift 0 should sample every call")
		}
		tm.End()
	}
	if est := tm.EstimatedTotal(); est != 10*time.Millisecond {
		t.Errorf("EstimatedTotal = %v, want 10ms", est)
	}
}

func TestEndWithoutBeginIsNoop(t *testing.T) {
	tm := NewSampledTimer(1, fakeClock(time.Millisecond))
	tm.End() // must not panic or accumulate
	if tm.EstimatedTotal() != 0 {
		t.Error("End without Begin accumulated time")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.Mean() != 0 {
		t.Error("empty Mean should be 0")
	}
	a.Add(2 * time.Second)
	a.Add(4 * time.Second)
	if a.Total() != 6*time.Second || a.N() != 2 || a.Mean() != 3*time.Second {
		t.Errorf("Accumulator = total %v n %d mean %v", a.Total(), a.N(), a.Mean())
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{5, 1, 3, 2, 4})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	if got := c.Percentile(0.5); got != 3 {
		t.Errorf("P50 = %g, want 3", got)
	}
	if got := c.Percentile(0); got != 1 {
		t.Errorf("P0 = %g", got)
	}
	if got := c.Percentile(1); got != 5 {
		t.Errorf("P100 = %g", got)
	}
	if got := c.FractionBelow(3); got != 0.6 {
		t.Errorf("FractionBelow(3) = %g, want 0.6", got)
	}
	if got := c.FractionBelow(0.5); got != 0 {
		t.Errorf("FractionBelow(0.5) = %g, want 0", got)
	}
	if got := c.Mean(); got != 3 {
		t.Errorf("Mean = %g, want 3", got)
	}
	xs, ys := c.Steps()
	if len(xs) != 5 || xs[0] != 1 || ys[4] != 1.0 {
		t.Errorf("Steps = %v %v", xs, ys)
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.Percentile(0.5) != 0 || c.FractionBelow(1) != 0 || c.Mean() != 0 {
		t.Error("empty CDF should return zeros")
	}
}
