package store

import "recache/internal/value"

// BatchRows is the number of rows a batch cursor hands to the vectorized
// pipeline per step. 1024 keeps a selection vector plus a few typed columns
// inside L1/L2 while amortizing per-batch dispatch.
const BatchRows = 1024

// BatchCursor streams a cache scan as selection batches over typed column
// vectors: Cols are the projected columns (full-length, immutable, shared
// with the store), and each Next call yields the physical row indexes of
// the next batch. Kernels read Cols[...].Ints/Floats/Strs directly through
// the selection vector, so a vectorized scan never materializes a boxed
// value.Value row — that happens, if at all, only at the pipeline boundary
// (FillRows).
type BatchCursor struct {
	// Cols are the projected column vectors, aligned with the projection
	// the cursor was opened with.
	Cols []*Vec
	// Rows is the logical row need of the scan (the cost model's r_i):
	// NumFlatRows for flattened scans, NumRecords for per-record scans.
	Rows int64
	next func(buf []int32) []int32
}

// Next fills buf with the next batch's row indexes (ascending) and returns
// the filled prefix; nil when the scan is exhausted. At most cap(buf) rows
// are returned per call.
func (c *BatchCursor) Next(buf []int32) []int32 { return c.next(buf) }

// BatchSource is implemented by store layouts that can serve column batches
// directly. A false return means this store/granularity pair needs the
// row-at-a-time path (row-major layout, or Parquet's FSM-assembled
// flattened view).
type BatchSource interface {
	BatchCursor(flat bool, cols []int) (*BatchCursor, bool)
}

// FillRows materializes the selected rows of the projected columns into the
// row-major chunk (stride nc, row k at chunk[k*nc:(k+1)*nc]), dispatching
// on each column's kind once per batch.
func FillRows(cols []*Vec, sel []int32, chunk []value.Value, nc int) {
	for i, v := range cols {
		fillColumn(chunk, i, nc, sel, v)
	}
}

// BatchCursor implements BatchSource for the flattened columnar layout:
// both granularities are batchable. Flattened batches select the non-
// placeholder rows; per-record batches select the first physical row of
// every record (the dedup ScanRecords performs row by row).
func (s *columnarStore) BatchCursor(flat bool, cols []int) (*BatchCursor, bool) {
	if !flat {
		for _, c := range cols {
			if s.cols[c].Repeated {
				return nil, false // row path reports the projection error
			}
		}
	}
	vecs := make([]*Vec, len(cols))
	for i, c := range cols {
		vecs[i] = s.vecs[c]
	}
	n := len(s.recID)
	pos := 0
	var next func(buf []int32) []int32
	if flat {
		next = func(buf []int32) []int32 {
			out := buf[:0]
			for pos < n && len(out) < cap(buf) {
				if !s.skip[pos] {
					out = append(out, int32(pos))
				}
				pos++
			}
			if len(out) == 0 && pos >= n {
				return nil
			}
			return out
		}
	} else {
		prev := int32(-1)
		next = func(buf []int32) []int32 {
			out := buf[:0]
			for pos < n && len(out) < cap(buf) {
				if id := s.recID[pos]; id != prev {
					prev = id
					out = append(out, int32(pos))
				}
				pos++
			}
			if len(out) == 0 && pos >= n {
				return nil
			}
			return out
		}
	}
	rows := int64(s.NumFlatRows())
	if !flat {
		rows = int64(s.NumRecords())
	}
	return &BatchCursor{Cols: vecs, Rows: rows, next: next}, true
}

// BatchCursor implements BatchSource for the Parquet layout: per-record
// scans iterate the short per-record vectors directly (the layout's fast
// path), so they batch trivially. The flattened view of nested data needs
// FSM record assembly and is served by the row path; a flat schema has no
// repeated field, so its flattened view is the record view.
func (s *parquetStore) BatchCursor(flat bool, cols []int) (*BatchCursor, bool) {
	if flat && s.listPath != nil {
		return nil, false
	}
	for _, c := range cols {
		if s.cols[c].Repeated {
			return nil, false
		}
	}
	vecs := make([]*Vec, len(cols))
	for i, c := range cols {
		vecs[i] = s.flatVecs[c]
	}
	pos := 0
	next := func(buf []int32) []int32 {
		if pos >= s.nRecs {
			return nil
		}
		out := buf[:0]
		for pos < s.nRecs && len(out) < cap(buf) {
			out = append(out, int32(pos))
			pos++
		}
		return out
	}
	return &BatchCursor{Cols: vecs, Rows: int64(s.nRecs), next: next}, true
}
