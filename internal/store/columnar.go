package store

import (
	"fmt"
	"time"

	"recache/internal/value"
)

// columnarStore is the relational column-oriented layout over the
// *flattened* view of nested records (§4 of the paper): each leaf becomes a
// typed vector of length R (the flattened row count), with parent values
// duplicated once per list element. Records whose repeated field is empty
// keep one placeholder row (nulls in the repeated columns) so that
// record-granularity scans and layout conversions lose no data; flattened
// scans skip placeholders.
//
// By design ScanRecords still iterates all R rows, deduplicating by record
// id: flattening discards record boundaries, which is exactly why the paper
// finds the columnar layout slow when queries touch only non-nested
// attributes (Parquet reads short per-record columns instead).
type columnarStore struct {
	schema *value.Type
	cols   []value.LeafColumn
	vecs   []*vec
	recID  []int32 // record index per physical row
	skip   []bool  // true for placeholder rows of empty-list records
	nRecs  int
	size   int64
}

type columnarBuilder struct {
	st      *columnarStore
	hasList bool
}

func newColumnarBuilder(schema *value.Type, cols []value.LeafColumn) *columnarBuilder {
	st := &columnarStore{schema: schema, cols: cols}
	st.vecs = make([]*vec, len(cols))
	for i, c := range cols {
		st.vecs[i] = newVec(c.Type)
	}
	return &columnarBuilder{st: st, hasList: value.RepeatedField(schema) != nil}
}

// Add implements Builder: the record is flattened and each row appended to
// the column vectors. This write amplification (duplicated parents) is what
// makes columnar caches slower to build than Parquet (Fig. 6).
func (b *columnarBuilder) Add(rec value.Value) error {
	if rec.Kind != value.Record {
		return fmt.Errorf("store: columnar add: not a record: %s", rec.Kind)
	}
	st := b.st
	ri := int32(st.nRecs)
	st.nRecs++
	rows := value.FlattenRecord(rec, st.schema, st.cols)
	if len(rows) == 0 {
		// Placeholder row: non-repeated values present, repeated columns null.
		for ci, c := range st.cols {
			if c.Repeated {
				st.vecs[ci].AppendVal(value.VNull)
			} else {
				st.vecs[ci].AppendVal(value.Get(rec, st.schema, c.Path))
			}
		}
		st.recID = append(st.recID, ri)
		st.skip = append(st.skip, b.hasList)
		return nil
	}
	for _, row := range rows {
		for ci := range st.cols {
			st.vecs[ci].AppendVal(row[ci])
		}
		st.recID = append(st.recID, ri)
		st.skip = append(st.skip, false)
	}
	return nil
}

// Finish implements Builder.
func (b *columnarBuilder) Finish() Store {
	b.st.size = b.computeSize()
	return b.st
}

// SizeBytes implements Builder.
func (b *columnarBuilder) SizeBytes() int64 { return b.computeSize() }

func (b *columnarBuilder) computeSize() int64 {
	var sz int64
	for _, v := range b.st.vecs {
		sz += v.SizeBytes()
	}
	sz += int64(len(b.st.recID)) * 5 // recID + skip
	return sz
}

// Layout implements Store.
func (s *columnarStore) Layout() Layout { return LayoutColumnar }

// Schema implements Store.
func (s *columnarStore) Schema() *value.Type { return s.schema }

// Columns implements Store.
func (s *columnarStore) Columns() []value.LeafColumn { return s.cols }

// NumRecords implements Store.
func (s *columnarStore) NumRecords() int { return s.nRecs }

// NumFlatRows implements Store.
func (s *columnarStore) NumFlatRows() int { return len(s.recID) }

// SizeBytes implements Store.
func (s *columnarStore) SizeBytes() int64 { return s.size }

// ScanFlat implements Store: a vectorized columnar scan. Rows are
// processed in chunks; each selected vector is copied into the row-major
// output buffer by a typed inner loop (the kind dispatch happens once per
// column per chunk, not once per cell), which is precisely the tight,
// branch-light access pattern that makes column stores fast and that
// Parquet's row-driven FSM assembly cannot use.
func (s *columnarStore) ScanFlat(cols []int, emit EmitFunc) (ScanStats, error) {
	start := time.Now()
	n := len(s.recID)
	nc := len(cols)
	vecs := make([]*vec, nc)
	for i, c := range cols {
		vecs[i] = s.vecs[c]
	}
	const chunkRows = BatchRows
	rowIdx := make([]int32, 0, chunkRows)
	chunk := make([]value.Value, chunkRows*max(nc, 1))
	for base := 0; base < n; base += chunkRows {
		end := base + chunkRows
		if end > n {
			end = n
		}
		rowIdx = rowIdx[:0]
		for r := base; r < end; r++ {
			if !s.skip[r] {
				rowIdx = append(rowIdx, int32(r))
			}
		}
		m := len(rowIdx)
		if m == 0 {
			continue
		}
		for i, v := range vecs {
			fillColumn(chunk, i, nc, rowIdx, v)
		}
		for k := 0; k < m; k++ {
			if err := emit(chunk[k*nc : (k+1)*nc : (k+1)*nc]); err != nil {
				return ScanStats{}, err
			}
		}
	}
	// The flattened columnar layout has negligible computational cost: all
	// time is data access (§4.2).
	return ScanStats{
		DataNanos:   time.Since(start).Nanoseconds(),
		RowsScanned: int64(n),
	}, nil
}

// fillColumn writes vector values for the selected rows into column slot i
// of the row-major chunk, dispatching on the column kind once.
func fillColumn(chunk []value.Value, i, nc int, sel []int32, v *Vec) {
	switch v.Kind {
	case value.Int:
		for k, r := range sel {
			if v.Nulls.Get(int(r)) {
				chunk[k*nc+i] = value.VNull
			} else {
				chunk[k*nc+i] = value.Value{Kind: value.Int, I: v.Ints[r]}
			}
		}
	case value.Float:
		for k, r := range sel {
			if v.Nulls.Get(int(r)) {
				chunk[k*nc+i] = value.VNull
			} else {
				chunk[k*nc+i] = value.Value{Kind: value.Float, F: v.Floats[r]}
			}
		}
	case value.String:
		for k, r := range sel {
			if v.Nulls.Get(int(r)) {
				chunk[k*nc+i] = value.VNull
			} else {
				chunk[k*nc+i] = value.Value{Kind: value.String, S: v.Strs[r]}
			}
		}
	case value.Bool:
		for k, r := range sel {
			if v.Nulls.Get(int(r)) {
				chunk[k*nc+i] = value.VNull
			} else {
				chunk[k*nc+i] = value.Value{Kind: value.Bool, B: v.Bools[r]}
			}
		}
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// ScanRecords implements Store: flattening lost the record boundaries, so
// the scan walks all R physical rows, loading the (duplicated) column
// values of every row, and deduplicates on the record id before emitting.
// Reading the duplication is the honest cost of this layout for per-record
// queries — the paper's observation that the columnar cache "has to process
// more data" while Parquet reads columns 4× shorter (§4, §6.1.1).
func (s *columnarStore) ScanRecords(cols []int, emit EmitFunc) (ScanStats, error) {
	for _, c := range cols {
		if s.cols[c].Repeated {
			return ScanStats{}, fmt.Errorf("store: ScanRecords cannot project repeated column %q", s.cols[c].Name())
		}
	}
	start := time.Now()
	n := len(s.recID)
	nc := len(cols)
	vecs := make([]*vec, nc)
	for i, c := range cols {
		vecs[i] = s.vecs[c]
	}
	const chunkRows = BatchRows
	rowIdx := make([]int32, chunkRows)
	chunk := make([]value.Value, chunkRows*max(nc, 1))
	prev := int32(-1)
	for base := 0; base < n; base += chunkRows {
		end := base + chunkRows
		if end > n {
			end = n
		}
		m := end - base
		for k := 0; k < m; k++ {
			rowIdx[k] = int32(base + k)
		}
		// Load every physical row's values (the duplicated data), then emit
		// only the first row of each record.
		for i, v := range vecs {
			fillColumn(chunk, i, nc, rowIdx[:m], v)
		}
		for k := 0; k < m; k++ {
			id := s.recID[base+k]
			if id == prev {
				continue
			}
			prev = id
			if err := emit(chunk[k*nc : (k+1)*nc : (k+1)*nc]); err != nil {
				return ScanStats{}, err
			}
		}
	}
	return ScanStats{
		DataNanos:   time.Since(start).Nanoseconds(),
		RowsScanned: int64(n),
	}, nil
}

// ScanNested implements Store: regroup physical rows by record id and
// rebuild the nested records.
func (s *columnarStore) ScanNested(emit func(rec value.Value) error) error {
	n := len(s.recID)
	colIdx := colIndexByName(s.cols)
	r := 0
	for r < n {
		id := s.recID[r]
		end := r
		for end < n && s.recID[end] == id {
			end++
		}
		first := r
		card := end - r
		if s.skip[r] {
			card = 0
		}
		rec := assembleRecord(s.schema, colIdx,
			func(ci int) value.Value { return s.vecs[ci].Get(first) },
			card,
			func(ci, elem int) value.Value { return s.vecs[ci].Get(first + elem) })
		if err := emit(rec); err != nil {
			return err
		}
		r = end
	}
	return nil
}
