package store

import (
	"time"

	"recache/internal/value"
)

// Specialized layout conversions. The generic Convert path reassembles
// every nested record and re-shreds it — correct but allocation-heavy. The
// two nested layouts are close relatives: repeated columns carry identical
// entry sequences (one entry per list element, plus a null placeholder for
// empty lists), so converting between them reduces to typed vector copies:
//
//   - Parquet → columnar: copy repeated vectors verbatim; expand each
//     per-record vector by the record's flattened row count.
//   - Columnar → Parquet: copy repeated vectors verbatim; gather each
//     duplicated vector at the first row of every record; rebuild the
//     repetition streams and list lengths from the record ids.
//
// This keeps the transformation cost T in the same regime as a scan, which
// is what the paper's cost model (eq. 3) assumes.

// copyVec deep-copies a vector (including the null bitmap's trailing word,
// so appends to the copy never alias the source).
func copyVec(src *vec) *vec {
	out := &vec{Kind: src.Kind, Nulls: src.Nulls.Clone()}
	out.Ints = append([]int64(nil), src.Ints...)
	out.Floats = append([]float64(nil), src.Floats...)
	out.Strs = append([]string(nil), src.Strs...)
	out.Bools = append([]bool(nil), src.Bools...)
	return out
}

// expandVec repeats src[i] counts[i] times.
func expandVec(src *vec, counts []int32) *vec {
	var total int
	for _, c := range counts {
		total += int(c)
	}
	out := &vec{Kind: src.Kind}
	switch src.Kind {
	case value.Int:
		out.Ints = make([]int64, 0, total)
		for i, c := range counts {
			for k := int32(0); k < c; k++ {
				out.Nulls.Append(src.Nulls.Get(i))
				out.Ints = append(out.Ints, src.Ints[i])
			}
		}
	case value.Float:
		out.Floats = make([]float64, 0, total)
		for i, c := range counts {
			for k := int32(0); k < c; k++ {
				out.Nulls.Append(src.Nulls.Get(i))
				out.Floats = append(out.Floats, src.Floats[i])
			}
		}
	case value.String:
		out.Strs = make([]string, 0, total)
		for i, c := range counts {
			for k := int32(0); k < c; k++ {
				out.Nulls.Append(src.Nulls.Get(i))
				out.Strs = append(out.Strs, src.Strs[i])
			}
		}
	default: // value.Bool
		out.Bools = make([]bool, 0, total)
		for i, c := range counts {
			for k := int32(0); k < c; k++ {
				out.Nulls.Append(src.Nulls.Get(i))
				out.Bools = append(out.Bools, src.Bools[i])
			}
		}
	}
	return out
}

// gatherVec picks src at the given indexes.
func gatherVec(src *vec, idx []int32) *vec {
	out := &vec{Kind: src.Kind}
	switch src.Kind {
	case value.Int:
		out.Ints = make([]int64, 0, len(idx))
		for _, i := range idx {
			out.Nulls.Append(src.Nulls.Get(int(i)))
			out.Ints = append(out.Ints, src.Ints[i])
		}
	case value.Float:
		out.Floats = make([]float64, 0, len(idx))
		for _, i := range idx {
			out.Nulls.Append(src.Nulls.Get(int(i)))
			out.Floats = append(out.Floats, src.Floats[i])
		}
	case value.String:
		out.Strs = make([]string, 0, len(idx))
		for _, i := range idx {
			out.Nulls.Append(src.Nulls.Get(int(i)))
			out.Strs = append(out.Strs, src.Strs[i])
		}
	default:
		out.Bools = make([]bool, 0, len(idx))
		for _, i := range idx {
			out.Nulls.Append(src.Nulls.Get(int(i)))
			out.Bools = append(out.Bools, src.Bools[i])
		}
	}
	return out
}

// convertParquetToColumnar performs the direct vector-level conversion.
func convertParquetToColumnar(p *parquetStore) *columnarStore {
	out := &columnarStore{schema: p.schema, cols: p.cols, nRecs: p.nRecs}
	counts := make([]int32, p.nRecs)
	for ri := 0; ri < p.nRecs; ri++ {
		c := int32(p.card(ri))
		if c == 0 {
			c = 1 // placeholder row
		}
		counts[ri] = c
	}
	out.vecs = make([]*vec, len(p.cols))
	for ci, c := range p.cols {
		if c.Repeated {
			out.vecs[ci] = copyVec(p.repVecs[ci])
		} else {
			out.vecs[ci] = expandVec(p.flatVecs[ci], counts)
		}
	}
	total := 0
	for _, c := range counts {
		total += int(c)
	}
	out.recID = make([]int32, 0, total)
	out.skip = make([]bool, 0, total)
	for ri := 0; ri < p.nRecs; ri++ {
		empty := p.card(ri) == 0
		for k := int32(0); k < counts[ri]; k++ {
			out.recID = append(out.recID, int32(ri))
			out.skip = append(out.skip, empty)
		}
	}
	var sz int64
	for _, v := range out.vecs {
		sz += v.SizeBytes()
	}
	out.size = sz + int64(len(out.recID))*5
	return out
}

// convertColumnarToParquet performs the reverse conversion.
func convertColumnarToParquet(c *columnarStore) *parquetStore {
	out := &parquetStore{
		schema:   c.schema,
		cols:     c.cols,
		listPath: value.RepeatedField(c.schema),
		nRecs:    c.nRecs,
		nFlat:    len(c.recID),
	}
	// First physical row and cardinality of every record.
	firstRow := make([]int32, 0, c.nRecs)
	lengths := make([]int32, 0, c.nRecs)
	n := len(c.recID)
	for r := 0; r < n; {
		id := c.recID[r]
		end := r
		for end < n && c.recID[end] == id {
			end++
		}
		firstRow = append(firstRow, int32(r))
		if c.skip[r] {
			lengths = append(lengths, 0)
		} else {
			lengths = append(lengths, int32(end-r))
		}
		r = end
	}
	hasList := out.listPath != nil
	if hasList {
		out.lengths = lengths
	}
	out.flatVecs = make([]*vec, len(c.cols))
	out.repVecs = make([]*vec, len(c.cols))
	out.reps = make([][]uint8, len(c.cols))
	// Shared repetition stream: 0 at each record's first entry, 1 after.
	var reps []uint8
	for ri := range firstRow {
		cnt := lengths[ri]
		if cnt == 0 {
			cnt = 1
		}
		for k := int32(0); k < cnt; k++ {
			if k == 0 {
				reps = append(reps, 0)
			} else {
				reps = append(reps, 1)
			}
		}
	}
	for ci, col := range c.cols {
		if col.Repeated {
			out.repVecs[ci] = copyVec(c.vecs[ci])
			out.reps[ci] = append([]uint8(nil), reps...)
		} else {
			out.flatVecs[ci] = gatherVec(c.vecs[ci], firstRow)
		}
	}
	var sz int64
	for ci := range out.cols {
		if v := out.flatVecs[ci]; v != nil {
			sz += v.SizeBytes()
		}
		if v := out.repVecs[ci]; v != nil {
			sz += v.SizeBytes()
			sz += int64(len(out.reps[ci]))
		}
	}
	out.size = sz + int64(len(out.lengths))*4
	return out
}

// fastConvert returns a specialized conversion when one exists.
func fastConvert(src Store, to Layout) (Store, bool) {
	switch s := src.(type) {
	case *parquetStore:
		if to == LayoutColumnar {
			return convertParquetToColumnar(s), true
		}
	case *columnarStore:
		if to == LayoutParquet {
			return convertColumnarToParquet(s), true
		}
	}
	return nil, false
}

// convertTimed wraps fastConvert with the generic fallback.
func convertTimed(src Store, to Layout) (Store, time.Duration, error) {
	start := time.Now()
	if out, ok := fastConvert(src, to); ok {
		return out, time.Since(start), nil
	}
	b, err := NewBuilder(to, src.Schema())
	if err != nil {
		return nil, 0, err
	}
	if err := src.ScanNested(func(rec value.Value) error { return b.Add(rec) }); err != nil {
		return nil, 0, err
	}
	return b.Finish(), time.Since(start), nil
}
