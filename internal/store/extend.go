package store

import "recache/internal/value"

// Extend builds a store holding src's records followed by the tail records,
// without mutating src (stores are immutable; concurrent scans of src stay
// valid). For the flat relational layouts this is a vector-level copy — the
// typed column slices are copied wholesale and only the tail goes through
// per-row append — so extending a cached entry over an appended file tail
// costs a memcpy of the old payload instead of re-boxing every old row
// through a Builder. Layouts without a copy fast path (Parquet's
// level-encoded vectors) report ok=false and the caller falls back to a
// full replay.
func Extend(src Store, tail []value.Value) (st Store, ok bool, err error) {
	switch s := src.(type) {
	case *columnarStore:
		st, err = s.extend(tail)
		return st, true, err
	case *rowStore:
		st, err = s.extend(tail)
		return st, true, err
	}
	return nil, false, nil
}

// cloneCap copies the vector with room for extra more entries, so the
// appends that follow never reallocate.
func (v *Vec) cloneCap(extra int) *Vec {
	nv := &Vec{Kind: v.Kind, Nulls: v.Nulls.Clone()}
	switch v.Kind {
	case value.Int:
		nv.Ints = append(make([]int64, 0, len(v.Ints)+extra), v.Ints...)
	case value.Float:
		nv.Floats = append(make([]float64, 0, len(v.Floats)+extra), v.Floats...)
	case value.String:
		nv.Strs = append(make([]string, 0, len(v.Strs)+extra), v.Strs...)
	case value.Bool:
		nv.Bools = append(make([]bool, 0, len(v.Bools)+extra), v.Bools...)
	}
	return nv
}

func (s *columnarStore) extend(tail []value.Value) (Store, error) {
	ns := &columnarStore{schema: s.schema, cols: s.cols, nRecs: s.nRecs}
	ns.vecs = make([]*vec, len(s.vecs))
	for i, v := range s.vecs {
		ns.vecs[i] = v.cloneCap(len(tail))
	}
	ns.recID = append(make([]int32, 0, len(s.recID)+len(tail)), s.recID...)
	ns.skip = append(make([]bool, 0, len(s.skip)+len(tail)), s.skip...)
	b := &columnarBuilder{st: ns, hasList: value.RepeatedField(s.schema) != nil}
	for _, rec := range tail {
		if err := b.Add(rec); err != nil {
			return nil, err
		}
	}
	return b.Finish(), nil
}

func (s *rowStore) extend(tail []value.Value) (Store, error) {
	ns := &rowStore{
		schema: s.schema,
		cols:   s.cols,
		// Old rows are immutable and shared; only the outer slice is copied.
		rows: append(make([][]value.Value, 0, len(s.rows)+len(tail)), s.rows...),
		size: s.size,
	}
	b := &rowBuilder{st: ns}
	for _, rec := range tail {
		if err := b.Add(rec); err != nil {
			return nil, err
		}
	}
	return b.Finish(), nil
}
