package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"recache/internal/value"
)

func flatSchema() *value.Type {
	return value.TRecord(
		value.F("a", value.TInt),
		value.FOpt("d", value.TFloat),
		value.F("s", value.TString),
	)
}

func randomFlatRecord(r *rand.Rand) value.Value {
	var d value.Value = value.VNull
	if r.Intn(3) > 0 {
		d = value.VFloat(float64(r.Intn(100)) / 4)
	}
	return value.VRecord(
		value.VInt(int64(r.Intn(1000))),
		d,
		value.VString([]string{"x", "yy", "zzz"}[r.Intn(3)]),
	)
}

// Property: for the flat layouts, Extend(src, tail) is indistinguishable
// from building src's records followed by tail from scratch, and src
// itself is untouched (concurrent scans of the pre-extension payload must
// stay valid).
func TestExtendMatchesRebuild(t *testing.T) {
	schema := flatSchema()
	cols := []int{0, 1, 2}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		old := make([]value.Value, r.Intn(20))
		for i := range old {
			old[i] = randomFlatRecord(r)
		}
		tail := make([]value.Value, r.Intn(10))
		for i := range tail {
			tail[i] = randomFlatRecord(r)
		}
		for _, layout := range []Layout{LayoutColumnar, LayoutRow} {
			src := build(t, layout, schema, old)
			before := collectFlat(t, src, cols)
			ext, ok, err := Extend(src, tail)
			if err != nil || !ok {
				return false
			}
			want := build(t, layout, schema, append(append([]value.Value{}, old...), tail...))
			if ext.Layout() != layout ||
				ext.NumRecords() != want.NumRecords() ||
				ext.SizeBytes() != want.SizeBytes() {
				return false
			}
			if !reflect.DeepEqual(collectFlat(t, ext, cols), collectFlat(t, want, cols)) {
				return false
			}
			// Source store must be byte-for-byte what it was.
			if !reflect.DeepEqual(collectFlat(t, src, cols), before) || src.NumRecords() != len(old) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExtendEmptyTail(t *testing.T) {
	schema := flatSchema()
	r := rand.New(rand.NewSource(7))
	recs := []value.Value{randomFlatRecord(r), randomFlatRecord(r)}
	src := build(t, LayoutColumnar, schema, recs)
	ext, ok, err := Extend(src, nil)
	if err != nil || !ok {
		t.Fatalf("Extend(nil tail): ok=%v err=%v", ok, err)
	}
	if ext.NumRecords() != 2 || ext.SizeBytes() != src.SizeBytes() {
		t.Errorf("empty-tail extension changed the store: %d records, %d bytes (src %d)",
			ext.NumRecords(), ext.SizeBytes(), src.SizeBytes())
	}
}

func TestExtendParquetFallsBack(t *testing.T) {
	// Parquet's level-encoded vectors have no copy fast path: the caller
	// must get ok=false and replay through a builder instead.
	src := build(t, LayoutParquet, orderSchema(), sampleOrders())
	st, ok, err := Extend(src, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ok || st != nil {
		t.Errorf("Extend on parquet: ok=%v st=%v, want fallback", ok, st)
	}
}
