package store

import "recache/internal/value"

// This file holds the batch gather/permutation helpers the vectorized join
// uses: a join's build table stores row-ids into retained column vectors
// instead of copied rows, and the probe side materializes matched output
// batches by gathering those row-ids back out of the columns — typed moves
// end to end, no boxed value.Value until the pipeline boundary.

// NewVec returns an empty vector of the given kind; the vectorized join
// accumulates copies of non-addressable build batches into fresh vectors
// through AppendFrom.
func NewVec(k value.Kind) *Vec { return &Vec{Kind: k} }

// AppendFrom appends src's i-th entry to v without materializing a boxed
// value. Both vectors must share a kind.
func (v *Vec) AppendFrom(src *Vec, i int) {
	if src.Nulls.Get(i) {
		v.Nulls.Append(true)
		switch v.Kind {
		case value.Int:
			v.Ints = append(v.Ints, 0)
		case value.Float:
			v.Floats = append(v.Floats, 0)
		case value.String:
			v.Strs = append(v.Strs, "")
		case value.Bool:
			v.Bools = append(v.Bools, false)
		}
		return
	}
	v.Nulls.Append(false)
	switch v.Kind {
	case value.Int:
		v.Ints = append(v.Ints, src.Ints[i])
	case value.Float:
		v.Floats = append(v.Floats, src.Floats[i])
	case value.String:
		v.Strs = append(v.Strs, src.Strs[i])
	case value.Bool:
		v.Bools = append(v.Bools, src.Bools[i])
	}
}

// Gather returns a new vector holding src's entries at ids, in order (the
// row-id addressing of the vectorized join's output batches). The kind
// dispatch happens once per call, not per row.
func Gather(src *Vec, ids []int32) *Vec {
	out := &Vec{Kind: src.Kind}
	switch src.Kind {
	case value.Int:
		out.Ints = make([]int64, len(ids))
		for k, id := range ids {
			out.Ints[k] = src.Ints[id]
		}
	case value.Float:
		out.Floats = make([]float64, len(ids))
		for k, id := range ids {
			out.Floats[k] = src.Floats[id]
		}
	case value.String:
		out.Strs = make([]string, len(ids))
		for k, id := range ids {
			out.Strs[k] = src.Strs[id]
		}
	case value.Bool:
		out.Bools = make([]bool, len(ids))
		for k, id := range ids {
			out.Bools[k] = src.Bools[id]
		}
	}
	for _, id := range ids {
		out.Nulls.Append(src.Nulls.Get(int(id)))
	}
	return out
}
