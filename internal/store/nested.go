package store

import (
	"recache/internal/value"
)

// colIndexByName maps dotted leaf names to column indexes.
func colIndexByName(cols []value.LeafColumn) map[string]int {
	m := make(map[string]int, len(cols))
	for i, c := range cols {
		m[c.Name()] = i
	}
	return m
}

// assembleRecord rebuilds one nested record from column accessors:
// flat(ci) returns the value of non-repeated leaf column ci for this record;
// rep(ci, e) returns the value of repeated leaf column ci for list element e;
// card is the number of elements of the record's repeated field (0 allowed).
//
// The walk mirrors value.LeafColumns: records recurse, the (single) list
// field expands card elements.
func assembleRecord(schema *value.Type, colIdx map[string]int,
	flat func(ci int) value.Value, card int, rep func(ci, e int) value.Value) value.Value {

	var build func(t *value.Type, path value.Path) value.Value
	var buildElem func(t *value.Type, path value.Path, e int) value.Value

	build = func(t *value.Type, path value.Path) value.Value {
		fields := make([]value.Value, len(t.Fields))
		for i, f := range t.Fields {
			np := append(append(value.Path{}, path...), f.Name)
			switch f.Type.Kind {
			case value.Record:
				fields[i] = build(f.Type, np)
			case value.List:
				elems := make([]value.Value, card)
				for e := 0; e < card; e++ {
					elems[e] = buildElem(f.Type.Elem, np, e)
				}
				fields[i] = value.VList(elems...)
			default:
				fields[i] = flat(colIdx[np.String()])
			}
		}
		return value.VRecord(fields...)
	}

	buildElem = func(t *value.Type, path value.Path, e int) value.Value {
		if t.Kind != value.Record {
			// List of primitives: the leaf column is the list path itself.
			return rep(colIdx[path.String()], e)
		}
		fields := make([]value.Value, len(t.Fields))
		for i, f := range t.Fields {
			np := append(append(value.Path{}, path...), f.Name)
			if f.Type.Kind == value.Record {
				fields[i] = buildElem(f.Type, np, e)
			} else {
				fields[i] = rep(colIdx[np.String()], e)
			}
		}
		return value.VRecord(fields...)
	}

	return build(schema, nil)
}
