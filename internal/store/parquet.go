package store

import (
	"fmt"
	"time"

	"recache/internal/value"
)

// parquetStore is the Dremel/Parquet-style nested columnar layout (§4):
// every leaf is striped into its own vector without duplication.
// Non-repeated leaves store exactly one entry per record — the "shorter
// columns" that make Parquet fast when queries touch only non-nested
// attributes. Repeated leaves store one entry per list element plus one
// placeholder entry for records with an empty list, each tagged with a
// repetition level (0 = first entry of a record, 1 = continuation), as in
// the Dremel paper. Null elements and placeholders are encoded through the
// vector's null bitmap (the definition-level information collapses to
// presence because the engine normalizes absent optional fields to nulls at
// ingestion; see DESIGN.md).
//
// Record reconstruction at scan time walks the level streams with an
// FSM-style cursor per column. That per-entry branching is Parquet's
// computational cost C_i: it is measured (sampled) and reported separately
// from data-access time D_i, feeding the layout-selection cost model.
type parquetStore struct {
	schema   *value.Type
	cols     []value.LeafColumn
	flatVecs []*vec    // nil for repeated columns; 1 entry/record otherwise
	repVecs  []*vec    // nil for non-repeated; 1 entry/level-entry otherwise
	reps     [][]uint8 // repetition-level stream per repeated column
	lengths  []int32   // list cardinality per record (nil for flat schemas)
	listPath value.Path
	nRecs    int
	nFlat    int // R: sum over records of max(card,1)... see NumFlatRows
	size     int64
}

type parquetBuilder struct {
	st    *parquetStore
	elemT *value.Type // list element type (nil for flat schemas)
}

func newParquetBuilder(schema *value.Type, cols []value.LeafColumn) *parquetBuilder {
	st := &parquetStore{schema: schema, cols: cols}
	st.flatVecs = make([]*vec, len(cols))
	st.repVecs = make([]*vec, len(cols))
	st.reps = make([][]uint8, len(cols))
	for i, c := range cols {
		if c.Repeated {
			st.repVecs[i] = newVec(c.Type)
		} else {
			st.flatVecs[i] = newVec(c.Type)
		}
	}
	b := &parquetBuilder{st: st}
	if lp := value.RepeatedField(schema); lp != nil {
		st.listPath = lp
		cur := schema
		for _, name := range lp {
			_, ft := cur.FieldIndex(name)
			cur = ft
		}
		b.elemT = cur.Elem
	}
	return b
}

// Add implements Builder: column striping. Each value is written exactly
// once — no parent duplication — which is why Parquet caches are cheaper to
// build (Fig. 6) and smaller in memory.
func (b *parquetBuilder) Add(rec value.Value) error {
	if rec.Kind != value.Record {
		return fmt.Errorf("store: parquet add: not a record: %s", rec.Kind)
	}
	st := b.st
	st.nRecs++
	card := 1
	var listVal value.Value
	if st.listPath != nil {
		listVal = value.Get(rec, st.schema, st.listPath)
		if listVal.Kind != value.List {
			card = 0
		} else {
			card = len(listVal.L)
		}
		st.lengths = append(st.lengths, int32(card))
	}
	if card == 0 {
		st.nFlat++ // placeholder row in the flattened view
	} else {
		st.nFlat += card
	}
	for ci, c := range st.cols {
		if !c.Repeated {
			st.flatVecs[ci].AppendVal(value.Get(rec, st.schema, c.Path))
			continue
		}
		suffix := c.Path[len(st.listPath):]
		if card == 0 {
			st.reps[ci] = append(st.reps[ci], 0)
			st.repVecs[ci].AppendVal(value.VNull)
			continue
		}
		for e := 0; e < card; e++ {
			r := uint8(1)
			if e == 0 {
				r = 0
			}
			st.reps[ci] = append(st.reps[ci], r)
			st.repVecs[ci].AppendVal(value.Get(listVal.L[e], b.elemT, suffix))
		}
	}
	return nil
}

// Finish implements Builder.
func (b *parquetBuilder) Finish() Store {
	b.st.size = b.computeSize()
	return b.st
}

// SizeBytes implements Builder.
func (b *parquetBuilder) SizeBytes() int64 { return b.computeSize() }

func (b *parquetBuilder) computeSize() int64 {
	var sz int64
	for ci := range b.st.cols {
		if v := b.st.flatVecs[ci]; v != nil {
			sz += v.SizeBytes()
		}
		if v := b.st.repVecs[ci]; v != nil {
			sz += v.SizeBytes()
		}
		sz += int64(len(b.st.reps[ci]))
	}
	sz += int64(len(b.st.lengths)) * 4
	return sz
}

// Layout implements Store.
func (s *parquetStore) Layout() Layout { return LayoutParquet }

// Schema implements Store.
func (s *parquetStore) Schema() *value.Type { return s.schema }

// Columns implements Store.
func (s *parquetStore) Columns() []value.LeafColumn { return s.cols }

// NumRecords implements Store.
func (s *parquetStore) NumRecords() int { return s.nRecs }

// NumFlatRows implements Store.
func (s *parquetStore) NumFlatRows() int { return s.nFlat }

// SizeBytes implements Store.
func (s *parquetStore) SizeBytes() int64 { return s.size }

func (s *parquetStore) card(ri int) int {
	if s.lengths == nil {
		return 1
	}
	return int(s.lengths[ri])
}

// ScanFlat implements Store: FSM-style record assembly, following the
// Dremel reconstruction algorithm. For every output row the FSM performs a
// transition per selected column: it reads the column's next repetition
// level, validates it against the expected state (0 starts a record, 1
// continues the list), applies the definition/null decision, and only then
// fetches the value. Non-repeated columns participate in every transition
// too — their reader re-emits the record-level value for each flattened
// row, exactly the duplicated work the relational columnar layout avoids.
// This per-row, per-column branching is Parquet's computational cost C_i
// (§4.1: "the FSM-based reconstruction algorithm requires significantly
// more computation and adds more CPU pipeline-breaking branches").
// One record in 128 is timed to split the scan into C_i and D_i.
func (s *parquetStore) ScanFlat(cols []int, emit EmitFunc) (ScanStats, error) {
	start := time.Now()

	type colState struct {
		idx      int
		repeated bool
		v        *vec
		reps     []uint8
		cursor   int // level-entry cursor for repeated columns
	}
	states := make([]colState, len(cols))
	for i, c := range cols {
		states[i] = colState{idx: c, repeated: s.cols[c].Repeated}
		if states[i].repeated {
			states[i].v = s.repVecs[c]
			states[i].reps = s.reps[c]
		} else {
			states[i].v = s.flatVecs[c]
		}
	}

	buf := make([]value.Value, len(cols))
	srcIdx := make([]int32, len(cols))
	var sampledData, sampledCompute int64
	sampleMask := (1 << sampleShift) - 1

	for ri := 0; ri < s.nRecs; ri++ {
		card := s.card(ri)
		sampled := ri&sampleMask == 0
		var tRec time.Time
		var recCompute int64
		if sampled {
			tRec = time.Now()
		}
		n := card
		if n == 0 {
			n = 1 // placeholder level entry to consume
		}
		for e := 0; e < n; e++ {
			var t0 time.Time
			if sampled {
				t0 = time.Now()
			}
			// FSM transition: one state update per selected column.
			want := uint8(1)
			if e == 0 {
				want = 0
			}
			for si := range states {
				st := &states[si]
				if st.repeated {
					rep := st.reps[st.cursor]
					if rep != want {
						return ScanStats{}, fmt.Errorf("store: corrupt repetition stream at record %d", ri)
					}
					// Peek the next level to decide whether the list
					// continues (the FSM's next-state computation).
					if st.cursor+1 < len(st.reps) && st.reps[st.cursor+1] == 1 && e == n-1 && card > 0 {
						return ScanStats{}, fmt.Errorf("store: repetition stream overruns record %d", ri)
					}
					if card == 0 || st.v.Nulls.Get(st.cursor) {
						srcIdx[si] = -1
					} else {
						srcIdx[si] = int32(st.cursor)
					}
					st.cursor++
				} else {
					// Non-repeated reader re-emits its record value per row,
					// with the definition (null) check applied each time.
					if st.v.Nulls.Get(ri) {
						srcIdx[si] = -1
					} else {
						srcIdx[si] = int32(ri)
					}
				}
			}
			if sampled {
				recCompute += time.Since(t0).Nanoseconds()
			}
			if card == 0 {
				continue // placeholder entry: levels consumed, nothing emitted
			}
			// Value fetch (data phase for this row).
			for si := range states {
				ix := srcIdx[si]
				if ix < 0 {
					buf[si] = value.VNull
				} else {
					buf[si] = states[si].v.Get(int(ix))
				}
			}
			if err := emit(buf); err != nil {
				return ScanStats{}, err
			}
		}
		if sampled {
			total := time.Since(tRec).Nanoseconds()
			sampledCompute += recCompute
			if total > recCompute {
				sampledData += total - recCompute
			}
		}
	}

	data, comp := splitByRatio(time.Since(start), sampledData, sampledCompute)
	return ScanStats{
		DataNanos:    data,
		ComputeNanos: comp,
		RowsScanned:  int64(s.nFlat),
	}, nil
}

// ScanRecords implements Store: the Parquet fast path. Non-repeated columns
// have exactly one entry per record, so the scan iterates the short
// per-record vectors directly with no assembly.
func (s *parquetStore) ScanRecords(cols []int, emit EmitFunc) (ScanStats, error) {
	for _, c := range cols {
		if s.cols[c].Repeated {
			return ScanStats{}, fmt.Errorf("store: ScanRecords cannot project repeated column %q", s.cols[c].Name())
		}
	}
	start := time.Now()
	vecs := make([]*vec, len(cols))
	for i, c := range cols {
		vecs[i] = s.flatVecs[c]
	}
	buf := make([]value.Value, len(cols))
	for ri := 0; ri < s.nRecs; ri++ {
		for i, v := range vecs {
			buf[i] = v.Get(ri)
		}
		if err := emit(buf); err != nil {
			return ScanStats{}, err
		}
	}
	return ScanStats{
		DataNanos:   time.Since(start).Nanoseconds(),
		RowsScanned: int64(s.nRecs),
	}, nil
}

// ScanNested implements Store.
func (s *parquetStore) ScanNested(emit func(rec value.Value) error) error {
	colIdx := colIndexByName(s.cols)
	// Level-entry cursor shared across repeated columns (they are aligned:
	// one list per schema).
	cursor := 0
	for ri := 0; ri < s.nRecs; ri++ {
		card := s.card(ri)
		base := cursor
		rec := assembleRecord(s.schema, colIdx,
			func(ci int) value.Value { return s.flatVecs[ci].Get(ri) },
			card,
			func(ci, e int) value.Value { return s.repVecs[ci].Get(base + e) })
		if card == 0 {
			cursor++
		} else {
			cursor += card
		}
		if err := emit(rec); err != nil {
			return err
		}
	}
	return nil
}
