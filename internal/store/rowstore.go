package store

import (
	"fmt"
	"time"

	"recache/internal/value"
)

// rowStore holds flat records as contiguous rows — the relational
// row-oriented layout. Row layout is best when queries touch most columns
// of a record (H2O's observation, used by the row/column advisor).
type rowStore struct {
	schema *value.Type
	cols   []value.LeafColumn
	rows   [][]value.Value
	size   int64
}

type rowBuilder struct {
	st *rowStore
}

func newRowBuilder(schema *value.Type, cols []value.LeafColumn) *rowBuilder {
	return &rowBuilder{st: &rowStore{schema: schema, cols: cols}}
}

// Add implements Builder.
func (b *rowBuilder) Add(rec value.Value) error {
	if rec.Kind != value.Record {
		return fmt.Errorf("store: row add: not a record: %s", rec.Kind)
	}
	row := make([]value.Value, len(b.st.cols))
	for i, c := range b.st.cols {
		row[i] = value.Get(rec, b.st.schema, c.Path)
		b.st.size += row[i].ShallowSize()
	}
	b.st.rows = append(b.st.rows, row)
	b.st.size += 24 // slice header
	return nil
}

// Finish implements Builder.
func (b *rowBuilder) Finish() Store { return b.st }

// SizeBytes implements Builder.
func (b *rowBuilder) SizeBytes() int64 { return b.st.size }

// Layout implements Store.
func (s *rowStore) Layout() Layout { return LayoutRow }

// Schema implements Store.
func (s *rowStore) Schema() *value.Type { return s.schema }

// Columns implements Store.
func (s *rowStore) Columns() []value.LeafColumn { return s.cols }

// NumRecords implements Store.
func (s *rowStore) NumRecords() int { return len(s.rows) }

// NumFlatRows implements Store.
func (s *rowStore) NumFlatRows() int { return len(s.rows) }

// SizeBytes implements Store.
func (s *rowStore) SizeBytes() int64 { return s.size }

// ScanFlat implements Store. For a flat schema the flattened view is the
// record view.
func (s *rowStore) ScanFlat(cols []int, emit EmitFunc) (ScanStats, error) {
	return s.scan(cols, emit)
}

// ScanRecords implements Store.
func (s *rowStore) ScanRecords(cols []int, emit EmitFunc) (ScanStats, error) {
	return s.scan(cols, emit)
}

func (s *rowStore) scan(cols []int, emit EmitFunc) (ScanStats, error) {
	start := time.Now()
	buf := make([]value.Value, len(cols))
	for _, row := range s.rows {
		// Row layout touches the full row even for narrow projections: the
		// whole record occupies one contiguous region, so the memory system
		// pulls it in regardless of how many fields the query needs.
		for i, c := range cols {
			buf[i] = row[c]
		}
		if err := emit(buf); err != nil {
			return ScanStats{}, err
		}
	}
	return ScanStats{
		DataNanos:   time.Since(start).Nanoseconds(),
		RowsScanned: int64(len(s.rows)),
	}, nil
}

// ScanNested implements Store.
func (s *rowStore) ScanNested(emit func(rec value.Value) error) error {
	for _, row := range s.rows {
		if err := emit(value.VRecord(row...)); err != nil {
			return err
		}
	}
	return nil
}
