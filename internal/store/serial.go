package store

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"recache/internal/value"
)

// Spill serialization: a Parquet-layout store written as a flat binary
// stream, used by the cache's disk tier. The format mirrors parquetStore's
// in-memory shape (per-column vectors, repetition streams, list lengths)
// so a spilled entry deserializes with typed bulk copies — no record
// re-assembly — keeping a disk hit far cheaper than a raw re-scan.
//
// The schema is NOT serialized: a spilled entry keeps all of its metadata
// (dataset, predicate, schema) in RAM and only the payload goes to disk,
// so the reader is handed the schema and validates the stream against it
// (column count, repeated-ness, and kind per column). Numeric payloads are
// written bit-exactly (floats via IEEE-754 bits), so NaN and ±0 survive
// the round trip.

// spillMagic identifies version 1 of the spill stream.
var spillMagic = [4]byte{'R', 'C', 'S', '1'}

// spillWriter is what the stream encoder needs from its sink. Both
// *bufio.Writer and *bytes.Buffer satisfy it, so in-memory encodes (the
// wire path serializes every query result) skip the bufio layer — and its
// per-call buffer allocation — entirely.
type spillWriter interface {
	io.Writer
	io.ByteWriter
	io.StringWriter
}

// WriteParquet serializes a Parquet-layout store to w. It returns an error
// if st is not the Parquet layout (callers convert first; see Convert).
func WriteParquet(w io.Writer, st Store) error {
	p, ok := st.(*parquetStore)
	if !ok {
		return fmt.Errorf("store: WriteParquet: not a parquet store (layout %s)", st.Layout())
	}
	var bw spillWriter
	var flush func() error
	if bb, ok := w.(*bytes.Buffer); ok {
		// Already an in-memory sink: write straight into it.
		bb.Grow(bufSizeFor(p.size))
		bw = bb
		flush = func() error { return nil }
	} else {
		// Size the buffer to the payload so a typical spill drains in one
		// or two write syscalls; the demotion write sits on the disk-hit
		// path (every re-admission demotes a victim), so per-flush
		// syscalls show up directly in the memory-pressure phase's
		// throughput.
		b := bufio.NewWriterSize(w, bufSizeFor(p.size))
		bw = b
		flush = b.Flush
	}
	lw := &leWriter{w: bw}
	if _, err := bw.Write(spillMagic[:]); err != nil {
		return err
	}
	hasList := byte(0)
	if p.listPath != nil {
		hasList = 1
	}
	bw.WriteByte(hasList)
	lw.u64(uint64(p.nRecs))
	lw.u64(uint64(p.nFlat))
	lw.u32(uint32(len(p.cols)))
	if hasList == 1 {
		for _, l := range p.lengths {
			lw.u32(uint32(l))
		}
	}
	for ci, c := range p.cols {
		rep := byte(0)
		if c.Repeated {
			rep = 1
		}
		bw.WriteByte(rep)
		if c.Repeated {
			lw.u64(uint64(len(p.reps[ci])))
			bw.Write(p.reps[ci])
			if err := lw.vec(p.repVecs[ci]); err != nil {
				return err
			}
		} else {
			if err := lw.vec(p.flatVecs[ci]); err != nil {
				return err
			}
		}
	}
	return flush()
}

// bufSizeFor clamps a store's in-memory size to a sane bufio buffer:
// at least the default 4KB, at most 1MB (large entries stream through).
func bufSizeFor(sz int64) int {
	const lo, hi = 4 << 10, 1 << 20
	switch {
	case sz < lo:
		return lo
	case sz > hi:
		return hi
	default:
		return int(sz) + 64 // header + per-vec framing slack
	}
}

// leWriter wraps the sink with a reusable little-endian scratch buffer.
// A stack `var b [8]byte` passed to an interface Write escapes, which
// costs one heap allocation per integer written — per value in a column
// vector. One leWriter per encode amortizes that to a single allocation.
type leWriter struct {
	w       spillWriter
	scratch [8]byte
}

func (lw *leWriter) u32(x uint32) {
	binary.LittleEndian.PutUint32(lw.scratch[:4], x)
	lw.w.Write(lw.scratch[:4])
}

func (lw *leWriter) u64(x uint64) {
	binary.LittleEndian.PutUint64(lw.scratch[:], x)
	lw.w.Write(lw.scratch[:])
}

func (lw *leWriter) vec(v *vec) error {
	w := lw.w
	w.WriteByte(byte(v.Kind))
	n := v.Len()
	lw.u64(uint64(n))
	for _, word := range v.Nulls.words {
		lw.u64(word)
	}
	switch v.Kind {
	case value.Int:
		for _, x := range v.Ints {
			lw.u64(uint64(x))
		}
	case value.Float:
		for _, x := range v.Floats {
			lw.u64(math.Float64bits(x))
		}
	case value.Bool:
		for _, x := range v.Bools {
			b := byte(0)
			if x {
				b = 1
			}
			w.WriteByte(b)
		}
	case value.String:
		for _, s := range v.Strs {
			lw.u32(uint32(len(s)))
			w.WriteString(s)
		}
	default:
		return fmt.Errorf("store: WriteParquet: unsupported vec kind %s", v.Kind)
	}
	return nil
}

// spillReader decodes the stream out of one contiguous buffer.
type spillReader struct {
	buf []byte
	off int
}

func (r *spillReader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.buf) {
		return nil, fmt.Errorf("store: spill stream truncated at offset %d (need %d bytes)", r.off, n)
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b, nil
}

func (r *spillReader) u8() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *spillReader) u32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (r *spillReader) u64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

// ReadParquet deserializes a spill stream written by WriteParquet,
// validating it against the expected record schema. The returned store is
// a normal Parquet-layout store (convertible to other layouts as usual).
// Callers that already hold the whole stream (the spill tier reads files
// with os.ReadFile) should use ReadParquetBytes and skip the copy.
func ReadParquet(rd io.Reader, schema *value.Type) (Store, error) {
	data, err := io.ReadAll(rd)
	if err != nil {
		return nil, err
	}
	return ReadParquetBytes(data, schema)
}

// ReadParquetBytes decodes a spill stream from an in-memory buffer. The
// returned store aliases data's string bytes only via copies (string(raw)),
// so data may be released after the call.
func ReadParquetBytes(data []byte, schema *value.Type) (Store, error) {
	r := &spillReader{buf: data}
	magic, err := r.bytes(4)
	if err != nil {
		return nil, err
	}
	if [4]byte(magic) != spillMagic {
		return nil, fmt.Errorf("store: bad spill magic %q", magic)
	}
	cols, err := value.LeafColumnsCached(schema)
	if err != nil {
		return nil, err
	}
	st := &parquetStore{
		schema:   schema,
		cols:     cols,
		listPath: value.RepeatedFieldCached(schema),
		flatVecs: make([]*vec, len(cols)),
		repVecs:  make([]*vec, len(cols)),
		reps:     make([][]uint8, len(cols)),
	}
	hasList, err := r.u8()
	if err != nil {
		return nil, err
	}
	if (hasList == 1) != (st.listPath != nil) {
		return nil, fmt.Errorf("store: spill stream list presence %v does not match schema %s", hasList == 1, schema)
	}
	nRecs, err := r.u64()
	if err != nil {
		return nil, err
	}
	nFlat, err := r.u64()
	if err != nil {
		return nil, err
	}
	st.nRecs = int(nRecs)
	st.nFlat = int(nFlat)
	ncols, err := r.u32()
	if err != nil {
		return nil, err
	}
	if int(ncols) != len(cols) {
		return nil, fmt.Errorf("store: spill stream has %d columns, schema %s has %d", ncols, schema, len(cols))
	}
	// A corrupt (or, on the wire path, hostile) stream must not size
	// allocations from counts the payload cannot back: every flat row costs
	// at least one null-bitmap bit per column, so nFlat — and a flat
	// stream's nRecs — is bounded by 8× the bytes left; a list stream
	// additionally spends four bytes per record on lengths.
	rem := uint64(len(r.buf) - r.off)
	if nRecs > 8*rem || nFlat > 8*rem {
		return nil, fmt.Errorf("store: spill stream claims %d records / %d flat rows with %d bytes left", nRecs, nFlat, rem)
	}
	if hasList == 1 && nRecs*4 > rem {
		return nil, fmt.Errorf("store: spill stream claims %d list lengths with %d bytes left", nRecs, rem)
	}
	// Expected level-entry count: one per list element, plus one placeholder
	// per empty list. For flat schemas the flattened view is the record view.
	levelEntries := st.nRecs
	if hasList == 1 {
		st.lengths = make([]int32, st.nRecs)
		flat, entries := 0, 0
		for i := range st.lengths {
			l, err := r.u32()
			if err != nil {
				return nil, err
			}
			st.lengths[i] = int32(l)
			if l == 0 {
				flat++
				entries++
			} else {
				flat += int(l)
				entries += int(l)
			}
		}
		if flat != st.nFlat {
			return nil, fmt.Errorf("store: spill stream flat rows %d != lengths sum %d", st.nFlat, flat)
		}
		levelEntries = entries
	} else if st.nFlat != st.nRecs {
		return nil, fmt.Errorf("store: flat spill stream has nFlat %d != nRecs %d", st.nFlat, st.nRecs)
	}
	for ci, c := range cols {
		rep, err := r.u8()
		if err != nil {
			return nil, err
		}
		if (rep == 1) != c.Repeated {
			return nil, fmt.Errorf("store: spill column %d repeated=%v, schema says %v", ci, rep == 1, c.Repeated)
		}
		if c.Repeated {
			nr, err := r.u64()
			if err != nil {
				return nil, err
			}
			if int(nr) != levelEntries {
				return nil, fmt.Errorf("store: spill column %d has %d level entries, want %d", ci, nr, levelEntries)
			}
			raw, err := r.bytes(int(nr))
			if err != nil {
				return nil, err
			}
			st.reps[ci] = append([]uint8(nil), raw...)
			v, err := readVec(r, c.Type.Kind, levelEntries)
			if err != nil {
				return nil, fmt.Errorf("store: spill column %d (%s): %w", ci, c.Name(), err)
			}
			st.repVecs[ci] = v
		} else {
			v, err := readVec(r, c.Type.Kind, st.nRecs)
			if err != nil {
				return nil, fmt.Errorf("store: spill column %d (%s): %w", ci, c.Name(), err)
			}
			st.flatVecs[ci] = v
		}
	}
	if r.off != len(r.buf) {
		return nil, fmt.Errorf("store: %d trailing bytes in spill stream", len(r.buf)-r.off)
	}
	var sz int64
	for ci := range st.cols {
		if v := st.flatVecs[ci]; v != nil {
			sz += v.SizeBytes()
		}
		if v := st.repVecs[ci]; v != nil {
			sz += v.SizeBytes()
		}
		sz += int64(len(st.reps[ci]))
	}
	st.size = sz + int64(len(st.lengths))*4
	return st, nil
}

func readVec(r *spillReader, want value.Kind, wantLen int) (*vec, error) {
	kind, err := r.u8()
	if err != nil {
		return nil, err
	}
	if value.Kind(kind) != want {
		return nil, fmt.Errorf("vec kind %s, schema says %s", value.Kind(kind), want)
	}
	n64, err := r.u64()
	if err != nil {
		return nil, err
	}
	n := int(n64)
	if n < 0 || n != wantLen {
		return nil, fmt.Errorf("vec has %d entries, want %d", n, wantLen)
	}
	// Size every allocation only after the stream proves it holds at least
	// the minimum encoding of n entries (bitmap words plus fixed-width
	// payload, or the 4-byte length prefixes for strings).
	words := (n + 63) / 64
	need := int64(words) * 8
	switch want {
	case value.Int, value.Float:
		need += int64(n) * 8
	case value.Bool:
		need += int64(n)
	case value.String:
		need += int64(n) * 4
	}
	if rem := int64(len(r.buf) - r.off); need > rem {
		return nil, fmt.Errorf("vec of %d entries needs %d bytes, stream has %d", n, need, rem)
	}
	v := &vec{Kind: want}
	v.Nulls.n = n
	v.Nulls.words = make([]uint64, words)
	for i := range v.Nulls.words {
		w, err := r.u64()
		if err != nil {
			return nil, err
		}
		v.Nulls.words[i] = w
	}
	switch want {
	case value.Int:
		v.Ints = make([]int64, n)
		for i := range v.Ints {
			x, err := r.u64()
			if err != nil {
				return nil, err
			}
			v.Ints[i] = int64(x)
		}
	case value.Float:
		v.Floats = make([]float64, n)
		for i := range v.Floats {
			x, err := r.u64()
			if err != nil {
				return nil, err
			}
			v.Floats[i] = math.Float64frombits(x)
		}
	case value.Bool:
		raw, err := r.bytes(n)
		if err != nil {
			return nil, err
		}
		v.Bools = make([]bool, n)
		for i, b := range raw {
			v.Bools[i] = b != 0
		}
	case value.String:
		v.Strs = make([]string, n)
		for i := range v.Strs {
			l, err := r.u32()
			if err != nil {
				return nil, err
			}
			raw, err := r.bytes(int(l))
			if err != nil {
				return nil, err
			}
			v.Strs[i] = string(raw)
		}
	default:
		return nil, fmt.Errorf("unsupported vec kind %s", want)
	}
	return v, nil
}
