package store

import (
	"bytes"
	"math"
	"reflect"
	"testing"

	"recache/internal/value"
)

// roundTrip serializes st (converting to Parquet first if needed) and
// deserializes it back, failing the test on any error.
func roundTrip(t *testing.T, st Store) Store {
	t.Helper()
	p := st
	if p.Layout() != LayoutParquet {
		var err error
		p, _, err = Convert(st, LayoutParquet)
		if err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := WriteParquet(&buf, p); err != nil {
		t.Fatal(err)
	}
	got, err := ReadParquet(&buf, st.Schema())
	if err != nil {
		t.Fatal(err)
	}
	return got
}

// TestSpillRoundTripAllLayouts spills every layout (converted through
// Parquet) and checks the flattened rows, record rows, and nested records
// all survive.
func TestSpillRoundTripAllLayouts(t *testing.T) {
	nested := orderSchema()
	flat := value.TRecord(
		value.F("id", value.TInt),
		value.F("price", value.TFloat),
		value.F("name", value.TString),
		value.F("ok", value.TBool),
	)
	flatRecs := []value.Value{
		value.VRecord(value.VInt(1), value.VFloat(1.5), value.VString("a"), value.VBool(true)),
		value.VRecord(value.VInt(2), value.VNull, value.VString(""), value.VBool(false)),
		value.VRecord(value.VNull, value.VFloat(-3.25), value.VNull, value.VNull),
	}
	cases := []struct {
		name   string
		layout Layout
		schema *value.Type
		recs   []value.Value
	}{
		{"parquet-nested", LayoutParquet, nested, sampleOrders()},
		{"columnar-nested", LayoutColumnar, nested, sampleOrders()},
		{"parquet-flat", LayoutParquet, flat, flatRecs},
		{"columnar-flat", LayoutColumnar, flat, flatRecs},
		{"row-flat", LayoutRow, flat, flatRecs},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			src := build(t, tc.layout, tc.schema, tc.recs)
			got := roundTrip(t, src)
			if got.NumRecords() != src.NumRecords() || got.NumFlatRows() != src.NumFlatRows() {
				t.Fatalf("shape: got (%d recs, %d flat), want (%d, %d)",
					got.NumRecords(), got.NumFlatRows(), src.NumRecords(), src.NumFlatRows())
			}
			allCols := make([]int, len(src.Columns()))
			for i := range allCols {
				allCols[i] = i
			}
			if want, have := collectFlat(t, src, allCols), collectFlat(t, got, allCols); !reflect.DeepEqual(want, have) {
				t.Errorf("ScanFlat mismatch:\nwant %v\ngot  %v", want, have)
			}
			var recCols []int
			for i, c := range src.Columns() {
				if !c.Repeated {
					recCols = append(recCols, i)
				}
			}
			if want, have := collectRecords(t, src, recCols), collectRecords(t, got, recCols); !reflect.DeepEqual(want, have) {
				t.Errorf("ScanRecords mismatch:\nwant %v\ngot  %v", want, have)
			}
		})
	}
}

// TestSpillRoundTripFloatEdgeCases checks floats are bit-exact: NaN stays
// NaN and the sign of zero survives.
func TestSpillRoundTripFloatEdgeCases(t *testing.T) {
	schema := value.TRecord(value.F("x", value.TFloat))
	negZero := math.Copysign(0, -1)
	recs := []value.Value{
		value.VRecord(value.VFloat(math.NaN())),
		value.VRecord(value.VFloat(negZero)),
		value.VRecord(value.VFloat(0)),
		value.VRecord(value.VFloat(math.Inf(1))),
		value.VRecord(value.VFloat(math.Inf(-1))),
		value.VRecord(value.VNull),
	}
	src := build(t, LayoutParquet, schema, recs)
	got := roundTrip(t, src).(*parquetStore)
	want := src.(*parquetStore)
	for i := range want.flatVecs[0].Floats {
		wb := math.Float64bits(want.flatVecs[0].Floats[i])
		gb := math.Float64bits(got.flatVecs[0].Floats[i])
		if wb != gb {
			t.Errorf("row %d: float bits %x != %x", i, gb, wb)
		}
	}
	if !got.flatVecs[0].Nulls.Get(5) {
		t.Error("null lost in round trip")
	}
}

// TestSpillRoundTripEmpty checks a zero-record store survives.
func TestSpillRoundTripEmpty(t *testing.T) {
	for _, schema := range []*value.Type{
		orderSchema(),
		value.TRecord(value.F("id", value.TInt)),
	} {
		src := build(t, LayoutParquet, schema, nil)
		got := roundTrip(t, src)
		if got.NumRecords() != 0 || got.NumFlatRows() != 0 {
			t.Errorf("empty store round trip: %d recs, %d flat", got.NumRecords(), got.NumFlatRows())
		}
	}
}

// TestSpillRoundTripSize checks the deserialized store reports the same
// footprint the original did — the cache re-admits by this number.
func TestSpillRoundTripSize(t *testing.T) {
	src := build(t, LayoutParquet, orderSchema(), sampleOrders())
	got := roundTrip(t, src)
	if got.SizeBytes() != src.SizeBytes() {
		t.Errorf("SizeBytes: got %d, want %d", got.SizeBytes(), src.SizeBytes())
	}
}

// TestSpillRejectsCorruptStream checks truncation, bad magic, and schema
// mismatch are detected rather than producing a bogus store.
func TestSpillRejectsCorruptStream(t *testing.T) {
	src := build(t, LayoutParquet, orderSchema(), sampleOrders())
	var buf bytes.Buffer
	if err := WriteParquet(&buf, src); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	if _, err := ReadParquet(bytes.NewReader(raw[:len(raw)/2]), src.Schema()); err == nil {
		t.Error("truncated stream accepted")
	}
	bad := append([]byte(nil), raw...)
	bad[0] = 'X'
	if _, err := ReadParquet(bytes.NewReader(bad), src.Schema()); err == nil {
		t.Error("bad magic accepted")
	}
	other := value.TRecord(value.F("id", value.TInt))
	if _, err := ReadParquet(bytes.NewReader(raw), other); err == nil {
		t.Error("schema mismatch accepted")
	}
	if _, err := ReadParquet(bytes.NewReader(append(append([]byte(nil), raw...), 0)), src.Schema()); err == nil {
		t.Error("trailing garbage accepted")
	}
}

// TestSpillRejectsNonParquet checks WriteParquet refuses other layouts.
func TestSpillRejectsNonParquet(t *testing.T) {
	schema := value.TRecord(value.F("id", value.TInt))
	src := build(t, LayoutColumnar, schema, []value.Value{value.VRecord(value.VInt(1))})
	if err := WriteParquet(&bytes.Buffer{}, src); err == nil {
		t.Error("columnar store accepted by WriteParquet")
	}
}
