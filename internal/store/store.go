// Package store implements the three in-memory cache layouts ReCache
// chooses between (§4 of the paper):
//
//   - LayoutRow: relational row-oriented storage (flat schemas only),
//   - LayoutColumnar: relational column-oriented storage of the *flattened*
//     view of (possibly nested) records, duplicating parent values per list
//     element exactly as §4 describes,
//   - LayoutParquet: Dremel/Parquet-style nested columnar storage with
//     repetition levels and per-element presence, reconstructed by an
//     FSM-style assembler at scan time.
//
// All layouts expose the same Store interface with two scan granularities:
// ScanFlat emits the flattened rows (the view produced by unnesting the
// repeated field), while ScanRecords emits one row per top-level record and
// may only project non-repeated columns. The two granularities have very
// different costs per layout — Parquet reads short per-record columns in
// ScanRecords but pays FSM assembly in ScanFlat; the flattened columnar
// layout always iterates every flattened row — and that asymmetry is the
// heart of the paper's layout-selection problem.
package store

import (
	"fmt"
	"time"

	"recache/internal/value"
)

// Layout identifies a cache storage layout.
type Layout uint8

// The supported layouts.
const (
	LayoutRow Layout = iota
	LayoutColumnar
	LayoutParquet
)

// String names the layout as the paper's figures do.
func (l Layout) String() string {
	switch l {
	case LayoutRow:
		return "row"
	case LayoutColumnar:
		return "columnar"
	case LayoutParquet:
		return "parquet"
	}
	return fmt.Sprintf("layout(%d)", uint8(l))
}

// ScanStats reports the cost split of one scan: DataNanos is time spent
// loading values from the store (D_i in the paper's cost model), and
// ComputeNanos the time spent in level decoding, record assembly and other
// branching work (C_i). RowsScanned is r_i. Vectorized scans additionally
// report the batch count, and carry the flag into the layout advisor so
// measured batch speed influences layout decisions.
type ScanStats struct {
	DataNanos    int64
	ComputeNanos int64
	RowsScanned  int64
	Batches      int64
	// BatchRows is the batch size a vectorized scan ran with; the cache's
	// adaptive batch tuner attributes the measured nanos to it.
	BatchRows  int64
	Vectorized bool
}

// Add accumulates another scan's stats.
func (s *ScanStats) Add(o ScanStats) {
	s.DataNanos += o.DataNanos
	s.ComputeNanos += o.ComputeNanos
	s.RowsScanned += o.RowsScanned
	s.Batches += o.Batches
	if o.BatchRows != 0 {
		s.BatchRows = o.BatchRows
	}
	s.Vectorized = s.Vectorized || o.Vectorized
}

// EmitFunc receives one projected row. The slice is reused across calls;
// callers must copy if they retain it.
type EmitFunc func(row []value.Value) error

// Store is an immutable in-memory cache of records.
type Store interface {
	// Layout identifies the physical layout.
	Layout() Layout
	// Schema returns the nested schema of the stored records.
	Schema() *value.Type
	// Columns enumerates the leaf columns of Schema in document order;
	// scan projections are indexes into this slice.
	Columns() []value.LeafColumn
	// NumRecords is the number of top-level records stored.
	NumRecords() int
	// NumFlatRows is R: the number of rows in the flattened view
	// (records with an empty repeated field count one placeholder row).
	NumFlatRows() int
	// SizeBytes estimates the in-memory footprint (B in the benefit metric).
	SizeBytes() int64
	// ScanFlat emits the flattened rows projected to cols (indexes into
	// Columns()). Records whose repeated field is empty emit no rows
	// (inner-unnest semantics).
	ScanFlat(cols []int, emit EmitFunc) (ScanStats, error)
	// ScanRecords emits one row per record projected to cols, all of which
	// must be non-repeated columns.
	ScanRecords(cols []int, emit EmitFunc) (ScanStats, error)
	// ScanNested reconstructs and emits the original nested records; used
	// for layout conversion and round-trip testing.
	ScanNested(emit func(rec value.Value) error) error
}

// Builder accumulates records and produces an immutable Store.
type Builder interface {
	// Add appends one record (matching the schema the builder was built with).
	Add(rec value.Value) error
	// Finish seals the builder. The builder must not be used afterwards.
	Finish() Store
	// SizeBytes estimates the bytes buffered so far (for admission/eviction
	// decisions taken mid-build).
	SizeBytes() int64
}

// NewBuilder returns a builder for the given layout and record schema.
// LayoutRow requires a flat schema.
func NewBuilder(layout Layout, schema *value.Type) (Builder, error) {
	cols, err := value.LeafColumns(schema)
	if err != nil {
		return nil, err
	}
	switch layout {
	case LayoutRow:
		if value.RepeatedField(schema) != nil {
			return nil, fmt.Errorf("store: row layout requires a flat schema, got %s", schema)
		}
		return newRowBuilder(schema, cols), nil
	case LayoutColumnar:
		return newColumnarBuilder(schema, cols), nil
	case LayoutParquet:
		return newParquetBuilder(schema, cols), nil
	}
	return nil, fmt.Errorf("store: unknown layout %v", layout)
}

// Convert rebuilds a store in another layout, returning the new store and
// the wall-clock transformation time (the T term of the paper's cost
// model, eq. 3). Conversions between the two nested columnar layouts take
// a direct vector-copy fast path (see convert.go); other pairs replay the
// nested records through a builder.
func Convert(src Store, to Layout) (Store, time.Duration, error) {
	return convertTimed(src, to)
}

// ColumnIndexes resolves dotted column names against the store's columns.
func ColumnIndexes(s Store, names []string) ([]int, error) {
	cols := s.Columns()
	out := make([]int, len(names))
	for i, n := range names {
		found := -1
		for j := range cols {
			if cols[j].Name() == n {
				found = j
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("store: no column %q in schema %s", n, s.Schema())
		}
		out[i] = found
	}
	return out, nil
}

// sampleEvery controls the record-granularity cost sampling inside scans:
// one record in 2^7 = 128 gets explicit clock reads (the paper's "<1% of
// records"), and the measured split is extrapolated over the whole scan.
const sampleShift = 7

// splitByRatio attributes a measured total duration to data/compute by a
// sampled ratio. If nothing was sampled, everything is data time.
func splitByRatio(total time.Duration, sampledData, sampledCompute int64) (int64, int64) {
	tot := total.Nanoseconds()
	s := sampledData + sampledCompute
	if s <= 0 {
		return tot, 0
	}
	c := tot * sampledCompute / s
	return tot - c, c
}
