package store

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"recache/internal/value"
)

func orderSchema() *value.Type {
	return value.TRecord(
		value.F("o_orderkey", value.TInt),
		value.F("o_totalprice", value.TFloat),
		value.F("o_priority", value.TString),
		value.F("lineitems", value.TList(value.TRecord(
			value.F("l_quantity", value.TInt),
			value.FOpt("l_discount", value.TFloat),
		))),
	)
}

func sampleOrders() []value.Value {
	return []value.Value{
		value.VRecord(value.VInt(1), value.VFloat(100.5), value.VString("HIGH"),
			value.VList(
				value.VRecord(value.VInt(3), value.VFloat(0.1)),
				value.VRecord(value.VInt(7), value.VNull),
			)),
		value.VRecord(value.VInt(2), value.VFloat(50.0), value.VString("LOW"),
			value.VList()), // empty list
		value.VRecord(value.VInt(3), value.VFloat(75.2), value.VString("MED"),
			value.VList(
				value.VRecord(value.VInt(1), value.VFloat(0.0)),
			)),
	}
}

func build(t *testing.T, layout Layout, schema *value.Type, recs []value.Value) Store {
	t.Helper()
	b, err := NewBuilder(layout, schema)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := b.Add(r); err != nil {
			t.Fatal(err)
		}
	}
	return b.Finish()
}

func collectFlat(t *testing.T, s Store, cols []int) [][]value.Value {
	t.Helper()
	var out [][]value.Value
	_, err := s.ScanFlat(cols, func(row []value.Value) error {
		out = append(out, append([]value.Value(nil), row...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func collectRecords(t *testing.T, s Store, cols []int) [][]value.Value {
	t.Helper()
	var out [][]value.Value
	_, err := s.ScanRecords(cols, func(row []value.Value) error {
		out = append(out, append([]value.Value(nil), row...))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func collectNested(t *testing.T, s Store) []value.Value {
	t.Helper()
	var out []value.Value
	if err := s.ScanNested(func(rec value.Value) error {
		out = append(out, rec)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

// expected flattened rows computed through the value package directly.
func expectedFlat(t *testing.T, schema *value.Type, recs []value.Value, cols []int) [][]value.Value {
	t.Helper()
	all, err := value.LeafColumns(schema)
	if err != nil {
		t.Fatal(err)
	}
	var out [][]value.Value
	for _, r := range recs {
		for _, row := range value.FlattenRecord(r, schema, all) {
			proj := make([]value.Value, len(cols))
			for i, c := range cols {
				proj[i] = row[c]
			}
			out = append(out, proj)
		}
	}
	return out
}

func TestNestedLayoutsScanFlat(t *testing.T) {
	schema := orderSchema()
	recs := sampleOrders()
	allCols := []int{0, 1, 2, 3, 4}
	want := expectedFlat(t, schema, recs, allCols)
	for _, layout := range []Layout{LayoutColumnar, LayoutParquet} {
		s := build(t, layout, schema, recs)
		got := collectFlat(t, s, allCols)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s ScanFlat:\ngot  %v\nwant %v", layout, got, want)
		}
		if s.NumRecords() != 3 {
			t.Errorf("%s NumRecords = %d", layout, s.NumRecords())
		}
		if s.NumFlatRows() != 4 { // 2 + placeholder + 1
			t.Errorf("%s NumFlatRows = %d, want 4", layout, s.NumFlatRows())
		}
	}
}

func TestNestedLayoutsScanFlatProjection(t *testing.T) {
	schema := orderSchema()
	recs := sampleOrders()
	cols := []int{3, 0} // nested first, then parent: order must be respected
	want := expectedFlat(t, schema, recs, cols)
	for _, layout := range []Layout{LayoutColumnar, LayoutParquet} {
		s := build(t, layout, schema, recs)
		got := collectFlat(t, s, cols)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s projected ScanFlat:\ngot  %v\nwant %v", layout, got, want)
		}
	}
}

func TestScanRecords(t *testing.T) {
	schema := orderSchema()
	recs := sampleOrders()
	cols := []int{0, 1}
	want := [][]value.Value{
		{value.VInt(1), value.VFloat(100.5)},
		{value.VInt(2), value.VFloat(50.0)},
		{value.VInt(3), value.VFloat(75.2)},
	}
	for _, layout := range []Layout{LayoutColumnar, LayoutParquet} {
		s := build(t, layout, schema, recs)
		got := collectRecords(t, s, cols)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s ScanRecords:\ngot  %v\nwant %v", layout, got, want)
		}
		// Repeated columns must be rejected.
		if _, err := s.ScanRecords([]int{3}, func([]value.Value) error { return nil }); err == nil {
			t.Errorf("%s ScanRecords on repeated column should fail", layout)
		}
	}
}

func TestScanRecordsRowCounts(t *testing.T) {
	// Parquet reads short columns (rows scanned = records); columnar must
	// iterate all flattened rows. This asymmetry drives layout selection.
	schema := orderSchema()
	recs := sampleOrders()
	p := build(t, LayoutParquet, schema, recs)
	c := build(t, LayoutColumnar, schema, recs)
	ps, _ := p.ScanRecords([]int{0}, func([]value.Value) error { return nil })
	cs, _ := c.ScanRecords([]int{0}, func([]value.Value) error { return nil })
	if ps.RowsScanned != 3 {
		t.Errorf("parquet ScanRecords rows = %d, want 3", ps.RowsScanned)
	}
	if cs.RowsScanned != 4 {
		t.Errorf("columnar ScanRecords rows = %d, want 4 (all flat rows)", cs.RowsScanned)
	}
}

func TestScanNestedRoundTrip(t *testing.T) {
	schema := orderSchema()
	recs := sampleOrders()
	for _, layout := range []Layout{LayoutColumnar, LayoutParquet} {
		s := build(t, layout, schema, recs)
		got := collectNested(t, s)
		if len(got) != len(recs) {
			t.Fatalf("%s round trip: %d records, want %d", layout, len(got), len(recs))
		}
		for i := range recs {
			if !got[i].Equal(recs[i]) {
				t.Errorf("%s record %d:\ngot  %v\nwant %v", layout, i, got[i], recs[i])
			}
		}
	}
}

func TestRowStore(t *testing.T) {
	schema := value.TRecord(
		value.F("a", value.TInt),
		value.F("b", value.TString),
	)
	recs := []value.Value{
		value.VRecord(value.VInt(1), value.VString("x")),
		value.VRecord(value.VInt(2), value.VString("y")),
	}
	s := build(t, LayoutRow, schema, recs)
	got := collectFlat(t, s, []int{1, 0})
	want := [][]value.Value{
		{value.VString("x"), value.VInt(1)},
		{value.VString("y"), value.VInt(2)},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("row ScanFlat = %v", got)
	}
	nested := collectNested(t, s)
	if !nested[0].Equal(recs[0]) || !nested[1].Equal(recs[1]) {
		t.Errorf("row ScanNested = %v", nested)
	}
	if s.SizeBytes() <= 0 {
		t.Error("row SizeBytes should be positive")
	}
}

func TestRowLayoutRejectsNestedSchema(t *testing.T) {
	if _, err := NewBuilder(LayoutRow, orderSchema()); err == nil {
		t.Error("row layout must reject nested schemas")
	}
}

func TestParquetSmallerThanColumnarOnNestedData(t *testing.T) {
	// With wide duplicated parents and many list elements, Parquet's
	// no-duplication striping must be smaller (the paper's compactness
	// claim, Fig. 6 discussion).
	schema := value.TRecord(
		value.F("id", value.TInt),
		value.F("payload", value.TString),
		value.F("items", value.TList(value.TRecord(value.F("q", value.TInt)))),
	)
	r := rand.New(rand.NewSource(42))
	var recs []value.Value
	for i := 0; i < 200; i++ {
		var elems []value.Value
		for j := 0; j < 8; j++ {
			elems = append(elems, value.VRecord(value.VInt(int64(r.Intn(100)))))
		}
		recs = append(recs, value.VRecord(
			value.VInt(int64(i)),
			value.VString("some-moderately-long-payload-string-XXXXXXXXXXXX"),
			value.VList(elems...)))
	}
	p := build(t, LayoutParquet, schema, recs)
	c := build(t, LayoutColumnar, schema, recs)
	if p.SizeBytes() >= c.SizeBytes() {
		t.Errorf("parquet %d bytes should be < columnar %d bytes", p.SizeBytes(), c.SizeBytes())
	}
}

func TestConvert(t *testing.T) {
	schema := orderSchema()
	recs := sampleOrders()
	src := build(t, LayoutParquet, schema, recs)
	dst, dur, err := Convert(src, LayoutColumnar)
	if err != nil {
		t.Fatal(err)
	}
	if dur < 0 {
		t.Error("negative conversion time")
	}
	if dst.Layout() != LayoutColumnar {
		t.Errorf("converted layout = %v", dst.Layout())
	}
	allCols := []int{0, 1, 2, 3, 4}
	if !reflect.DeepEqual(collectFlat(t, dst, allCols), collectFlat(t, src, allCols)) {
		t.Error("conversion changed contents")
	}
	// And back.
	back, _, err := Convert(dst, LayoutParquet)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(collectFlat(t, back, allCols), collectFlat(t, src, allCols)) {
		t.Error("round-trip conversion changed contents")
	}
}

func TestColumnIndexes(t *testing.T) {
	s := build(t, LayoutColumnar, orderSchema(), sampleOrders())
	idx, err := ColumnIndexes(s, []string{"lineitems.l_quantity", "o_orderkey"})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(idx, []int{3, 0}) {
		t.Errorf("ColumnIndexes = %v", idx)
	}
	if _, err := ColumnIndexes(s, []string{"nope"}); err == nil {
		t.Error("unknown column should fail")
	}
}

func TestEmptyStore(t *testing.T) {
	for _, layout := range []Layout{LayoutColumnar, LayoutParquet} {
		s := build(t, layout, orderSchema(), nil)
		if s.NumRecords() != 0 || s.NumFlatRows() != 0 {
			t.Errorf("%s empty store has records", layout)
		}
		if rows := collectFlat(t, s, []int{0}); len(rows) != 0 {
			t.Errorf("%s empty store emitted rows", layout)
		}
	}
}

// randomRecord generates a schema-conforming random order record.
func randomRecord(r *rand.Rand) value.Value {
	card := r.Intn(5)
	elems := make([]value.Value, card)
	for i := range elems {
		var disc value.Value = value.VNull
		if r.Intn(2) == 0 {
			disc = value.VFloat(float64(r.Intn(10)) / 10)
		}
		elems[i] = value.VRecord(value.VInt(int64(r.Intn(50))), disc)
	}
	return value.VRecord(
		value.VInt(int64(r.Intn(1000))),
		value.VFloat(r.Float64()*1000),
		value.VString([]string{"HIGH", "MED", "LOW"}[r.Intn(3)]),
		value.VList(elems...),
	)
}

// Property: for random record sets, all three scan paths agree across
// layouts and the nested round trip is exact.
func TestLayoutEquivalenceProperty(t *testing.T) {
	schema := orderSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(40)
		recs := make([]value.Value, n)
		for i := range recs {
			recs[i] = randomRecord(r)
		}
		bp, _ := NewBuilder(LayoutParquet, schema)
		bc, _ := NewBuilder(LayoutColumnar, schema)
		for _, rec := range recs {
			if bp.Add(rec) != nil || bc.Add(rec) != nil {
				return false
			}
		}
		p, c := bp.Finish(), bc.Finish()

		cols := []int{0, 3, 4}
		var pf, cf [][]value.Value
		if _, err := p.ScanFlat(cols, func(row []value.Value) error {
			pf = append(pf, append([]value.Value(nil), row...))
			return nil
		}); err != nil {
			return false
		}
		if _, err := c.ScanFlat(cols, func(row []value.Value) error {
			cf = append(cf, append([]value.Value(nil), row...))
			return nil
		}); err != nil {
			return false
		}
		if !reflect.DeepEqual(pf, cf) {
			return false
		}
		// Nested round trip through parquet.
		i := 0
		ok := true
		_ = p.ScanNested(func(rec value.Value) error {
			if !rec.Equal(recs[i]) {
				ok = false
			}
			i++
			return nil
		})
		return ok && i == len(recs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestScanStatsPopulated(t *testing.T) {
	schema := orderSchema()
	r := rand.New(rand.NewSource(1))
	var recs []value.Value
	for i := 0; i < 2000; i++ {
		recs = append(recs, randomRecord(r))
	}
	p := build(t, LayoutParquet, schema, recs)
	st, err := p.ScanFlat([]int{0, 3}, func([]value.Value) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if st.DataNanos <= 0 {
		t.Error("parquet scan DataNanos should be positive")
	}
	if st.ComputeNanos <= 0 {
		t.Error("parquet scan ComputeNanos should be positive (FSM assembly)")
	}
	c := build(t, LayoutColumnar, schema, recs)
	cst, err := c.ScanFlat([]int{0, 3}, func([]value.Value) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if cst.ComputeNanos != 0 {
		t.Error("columnar scan should report zero compute cost")
	}
	var agg ScanStats
	agg.Add(st)
	agg.Add(cst)
	if agg.RowsScanned != st.RowsScanned+cst.RowsScanned {
		t.Error("ScanStats.Add wrong")
	}
}

// Property: the vector-level conversion fast paths produce stores whose
// contents are identical to a generic rebuild through nested records.
func TestFastConvertMatchesGenericRebuild(t *testing.T) {
	schema := orderSchema()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(30)
		recs := make([]value.Value, n)
		for i := range recs {
			recs[i] = randomRecord(r)
		}
		for _, from := range []Layout{LayoutParquet, LayoutColumnar} {
			to := LayoutColumnar
			if from == LayoutColumnar {
				to = LayoutParquet
			}
			src, err := NewBuilder(from, schema)
			if err != nil {
				return false
			}
			for _, rec := range recs {
				if src.Add(rec) != nil {
					return false
				}
			}
			srcStore := src.Finish()
			fast, ok := fastConvert(srcStore, to)
			if !ok {
				return false
			}
			// Generic rebuild for comparison.
			gb, _ := NewBuilder(to, schema)
			if err := srcStore.ScanNested(func(rec value.Value) error { return gb.Add(rec) }); err != nil {
				return false
			}
			gen := gb.Finish()
			if fast.NumRecords() != gen.NumRecords() || fast.NumFlatRows() != gen.NumFlatRows() {
				return false
			}
			cols := []int{0, 1, 2, 3, 4}
			var a, b [][]value.Value
			if _, err := fast.ScanFlat(cols, func(row []value.Value) error {
				a = append(a, append([]value.Value(nil), row...))
				return nil
			}); err != nil {
				return false
			}
			if _, err := gen.ScanFlat(cols, func(row []value.Value) error {
				b = append(b, append([]value.Value(nil), row...))
				return nil
			}); err != nil {
				return false
			}
			if !reflect.DeepEqual(a, b) {
				return false
			}
			// Record granularity must agree too.
			a, b = nil, nil
			if _, err := fast.ScanRecords([]int{0, 1}, func(row []value.Value) error {
				a = append(a, append([]value.Value(nil), row...))
				return nil
			}); err != nil {
				return false
			}
			if _, err := gen.ScanRecords([]int{0, 1}, func(row []value.Value) error {
				b = append(b, append([]value.Value(nil), row...))
				return nil
			}); err != nil {
				return false
			}
			if !reflect.DeepEqual(a, b) {
				return false
			}
			// And the nested round trip through the fast-converted store.
			i := 0
			ok2 := true
			_ = fast.ScanNested(func(rec value.Value) error {
				if !rec.Equal(recs[i]) {
					ok2 = false
				}
				i++
				return nil
			})
			if !ok2 || i != len(recs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// The flat→flat conversions (row ↔ columnar) go through the generic path.
func TestConvertFlatRowColumnar(t *testing.T) {
	schema := value.TRecord(value.F("a", value.TInt), value.F("s", value.TString))
	recs := []value.Value{
		value.VRecord(value.VInt(1), value.VString("x")),
		value.VRecord(value.VInt(2), value.VString("y")),
	}
	rowSt := build(t, LayoutRow, schema, recs)
	colSt, _, err := Convert(rowSt, LayoutColumnar)
	if err != nil {
		t.Fatal(err)
	}
	back, _, err := Convert(colSt, LayoutRow)
	if err != nil {
		t.Fatal(err)
	}
	if back.Layout() != LayoutRow {
		t.Errorf("layout = %v", back.Layout())
	}
	got := collectFlat(t, back, []int{0, 1})
	want := collectFlat(t, rowSt, []int{0, 1})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("row→columnar→row changed contents")
	}
}
