package store

import (
	"fmt"

	"recache/internal/value"
)

// Bitmap is a packed null bitmap: bit i set means entry i is null. It is
// word-based (64 entries per uint64) so batch kernels can test nulls with
// one shift/mask instead of a byte load per row, and so an all-null or
// mostly-null vector costs 1 bit per entry instead of 1 byte.
type Bitmap struct {
	words []uint64
	n     int
}

// Len returns the number of entries tracked.
func (b *Bitmap) Len() int { return b.n }

// Append adds one entry.
func (b *Bitmap) Append(null bool) {
	if b.n>>6 == len(b.words) {
		b.words = append(b.words, 0)
	}
	if null {
		b.words[b.n>>6] |= 1 << (uint(b.n) & 63)
	}
	b.n++
}

// Get reports whether entry i is null.
func (b *Bitmap) Get(i int) bool {
	return b.words[i>>6]&(1<<(uint(i)&63)) != 0
}

// Any reports whether any entry is null; hot per-row loops (the join probe)
// use it to skip the per-row null test on all-valid columns.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// Clone deep-copies the bitmap: appends to either side never alias, even
// mid-word (the trailing partially-filled word is copied by value).
func (b *Bitmap) Clone() Bitmap {
	return Bitmap{words: append([]uint64(nil), b.words...), n: b.n}
}

// SizeBytes is the bitmap's memory footprint.
func (b *Bitmap) SizeBytes() int64 { return int64(len(b.words)) * 8 }

// Vec is a typed column vector with a null bitmap. It is the unit of
// storage for both the columnar and Parquet layouts, and — via Batch — the
// unit the vectorized execution path reads directly: exactly the slice
// matching Kind is populated, so kernels index Ints/Floats/Strs/Bools with
// no per-cell type dispatch.
type Vec struct {
	Kind   value.Kind
	Ints   []int64
	Floats []float64
	Strs   []string
	Bools  []bool
	Nulls  Bitmap
}

// vec is the historical internal name; layouts predate the export.
type vec = Vec

func newVec(t *value.Type) *Vec {
	return &Vec{Kind: t.Kind}
}

// Len returns the number of entries.
func (v *Vec) Len() int { return v.Nulls.Len() }

// AppendVal appends one value, converting numerics to the column's kind.
func (v *Vec) AppendVal(val value.Value) {
	isNull := val.Kind == value.Null
	v.Nulls.Append(isNull)
	switch v.Kind {
	case value.Int:
		if isNull {
			v.Ints = append(v.Ints, 0)
		} else {
			v.Ints = append(v.Ints, val.AsInt())
		}
	case value.Float:
		if isNull {
			v.Floats = append(v.Floats, 0)
		} else {
			v.Floats = append(v.Floats, val.AsFloat())
		}
	case value.String:
		if isNull {
			v.Strs = append(v.Strs, "")
		} else {
			v.Strs = append(v.Strs, val.S)
		}
	case value.Bool:
		if isNull {
			v.Bools = append(v.Bools, false)
		} else {
			v.Bools = append(v.Bools, val.B)
		}
	default:
		panic(fmt.Sprintf("store: vec of unsupported kind %s", v.Kind))
	}
}

// Get materializes the i-th value.
func (v *Vec) Get(i int) value.Value {
	if v.Nulls.Get(i) {
		return value.VNull
	}
	switch v.Kind {
	case value.Int:
		return value.VInt(v.Ints[i])
	case value.Float:
		return value.VFloat(v.Floats[i])
	case value.String:
		return value.VString(v.Strs[i])
	case value.Bool:
		return value.VBool(v.Bools[i])
	}
	return value.VNull
}

// SizeBytes estimates the memory footprint of the vector.
func (v *Vec) SizeBytes() int64 {
	sz := v.Nulls.SizeBytes()
	switch v.Kind {
	case value.Int:
		sz += int64(len(v.Ints)) * 8
	case value.Float:
		sz += int64(len(v.Floats)) * 8
	case value.Bool:
		sz += int64(len(v.Bools))
	case value.String:
		sz += int64(len(v.Strs)) * 16
		for _, s := range v.Strs {
			sz += int64(len(s))
		}
	}
	return sz
}
