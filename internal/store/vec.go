package store

import (
	"fmt"

	"recache/internal/value"
)

// vec is a typed column vector with a null bitmap. It is the unit of
// storage for both the columnar and Parquet layouts.
type vec struct {
	kind   value.Kind
	ints   []int64
	floats []float64
	strs   []string
	bools  []bool
	nulls  []bool
}

func newVec(t *value.Type) *vec {
	return &vec{kind: t.Kind}
}

func (v *vec) len() int { return len(v.nulls) }

// appendVal appends one value, converting numerics to the column's kind.
func (v *vec) appendVal(val value.Value) {
	isNull := val.Kind == value.Null
	v.nulls = append(v.nulls, isNull)
	switch v.kind {
	case value.Int:
		if isNull {
			v.ints = append(v.ints, 0)
		} else {
			v.ints = append(v.ints, val.AsInt())
		}
	case value.Float:
		if isNull {
			v.floats = append(v.floats, 0)
		} else {
			v.floats = append(v.floats, val.AsFloat())
		}
	case value.String:
		if isNull {
			v.strs = append(v.strs, "")
		} else {
			v.strs = append(v.strs, val.S)
		}
	case value.Bool:
		if isNull {
			v.bools = append(v.bools, false)
		} else {
			v.bools = append(v.bools, val.B)
		}
	default:
		panic(fmt.Sprintf("store: vec of unsupported kind %s", v.kind))
	}
}

// get materializes the i-th value.
func (v *vec) get(i int) value.Value {
	if v.nulls[i] {
		return value.VNull
	}
	switch v.kind {
	case value.Int:
		return value.VInt(v.ints[i])
	case value.Float:
		return value.VFloat(v.floats[i])
	case value.String:
		return value.VString(v.strs[i])
	case value.Bool:
		return value.VBool(v.bools[i])
	}
	return value.VNull
}

// sizeBytes estimates the memory footprint of the vector.
func (v *vec) sizeBytes() int64 {
	var sz int64 = int64(len(v.nulls)) // null bitmap, 1B/entry
	switch v.kind {
	case value.Int:
		sz += int64(len(v.ints)) * 8
	case value.Float:
		sz += int64(len(v.floats)) * 8
	case value.Bool:
		sz += int64(len(v.bools))
	case value.String:
		sz += int64(len(v.strs)) * 16
		for _, s := range v.strs {
			sz += int64(len(s))
		}
	}
	return sz
}
