package store

import (
	"testing"

	"recache/internal/value"
)

// --- Bitmap edges ---

func TestBitmapTrailingBitsWord(t *testing.T) {
	var b Bitmap
	// 130 entries: two full words plus a 2-bit trailing word. Nulls at the
	// word boundaries and in the trailing word.
	nulls := map[int]bool{0: true, 63: true, 64: true, 127: true, 129: true}
	for i := 0; i < 130; i++ {
		b.Append(nulls[i])
	}
	if b.Len() != 130 {
		t.Fatalf("Len = %d, want 130", b.Len())
	}
	for i := 0; i < 130; i++ {
		if b.Get(i) != nulls[i] {
			t.Errorf("Get(%d) = %v, want %v", i, b.Get(i), nulls[i])
		}
	}
	if got := b.SizeBytes(); got != 3*8 {
		t.Errorf("SizeBytes = %d, want 24 (3 words)", got)
	}
}

func TestBitmapWordBoundaryGrowth(t *testing.T) {
	var b Bitmap
	// Exactly 64 entries must occupy one word; the 65th must grow cleanly
	// even when it is a zero bit (Append(false) at a fresh word must still
	// allocate it, or Get would index past the slice).
	for i := 0; i < 64; i++ {
		b.Append(i%2 == 0)
	}
	if b.SizeBytes() != 8 {
		t.Fatalf("64 entries should fit one word, got %d bytes", b.SizeBytes())
	}
	b.Append(false)
	if b.Get(64) {
		t.Error("entry 64 should be non-null")
	}
	if b.SizeBytes() != 16 {
		t.Errorf("65 entries should occupy two words, got %d bytes", b.SizeBytes())
	}
}

func TestBitmapAppendAfterClone(t *testing.T) {
	// Clone mid-word, then append to both sides: the partially-filled
	// trailing word must not alias. (The layout conversions' copyVec relies
	// on this — a converted store's bitmap shares nothing with its source.)
	var src Bitmap
	for i := 0; i < 70; i++ {
		src.Append(i == 69)
	}
	dst := src.Clone()
	src.Append(true)
	dst.Append(false)
	if dst.Get(69) != true || dst.Get(70) != false {
		t.Errorf("clone bits wrong: Get(69)=%v Get(70)=%v", dst.Get(69), dst.Get(70))
	}
	if src.Get(70) != true {
		t.Errorf("source append lost: Get(70)=%v", src.Get(70))
	}
	// The appends above landed in the same word index on both bitmaps; if
	// Clone shared the trailing word, src's set bit would leak into dst.
	if dst.Len() != 71 || src.Len() != 71 {
		t.Fatalf("lens = %d, %d, want 71", dst.Len(), src.Len())
	}
}

// --- Vec edges ---

func TestVecAllNull(t *testing.T) {
	for _, typ := range []*value.Type{value.TInt, value.TFloat, value.TString, value.TBool} {
		v := newVec(typ)
		for i := 0; i < 100; i++ {
			v.AppendVal(value.VNull)
		}
		if v.Len() != 100 {
			t.Fatalf("%s: Len = %d", typ, v.Len())
		}
		for i := 0; i < 100; i++ {
			if got := v.Get(i); got.Kind != value.Null {
				t.Fatalf("%s: Get(%d) = %v, want null", typ, i, got)
			}
		}
		// The typed slice still holds zero placeholders (alignment matters
		// for batch kernels, which index it before checking the bitmap).
		switch typ.Kind {
		case value.Int:
			if len(v.Ints) != 100 {
				t.Errorf("int placeholders = %d", len(v.Ints))
			}
		case value.Float:
			if len(v.Floats) != 100 {
				t.Errorf("float placeholders = %d", len(v.Floats))
			}
		}
	}
}

func TestVecAppendAfterConvertDoesNotAlias(t *testing.T) {
	// Build a columnar store whose vectors end mid-word, convert it (the
	// fast path copies vectors), then keep appending to the original
	// builder's vectors: the converted store must not see the new entries.
	schema := value.TRecord(
		value.F("a", value.TInt),
		value.F("items", value.TList(value.TRecord(value.F("q", value.TInt)))),
	)
	b, err := NewBuilder(LayoutColumnar, schema)
	if err != nil {
		t.Fatal(err)
	}
	rec := func(a int64, qs ...int64) value.Value {
		items := make([]value.Value, len(qs))
		for i, q := range qs {
			items[i] = value.VRecord(value.VInt(q))
		}
		return value.VRecord(value.VInt(a), value.VList(items...))
	}
	for i := 0; i < 70; i++ {
		b.Add(rec(int64(i), int64(i)*10))
	}
	cs := b.Finish().(*columnarStore)
	conv, _, err := Convert(cs, LayoutParquet)
	if err != nil {
		t.Fatal(err)
	}
	ps := conv.(*parquetStore)
	// Mutate the source's vectors past the conversion point.
	for ci := range cs.vecs {
		cs.vecs[ci].AppendVal(value.VNull)
	}
	for ci, v := range ps.flatVecs {
		if v == nil {
			continue
		}
		if v.Len() != 70 {
			t.Errorf("converted flat col %d grew to %d", ci, v.Len())
		}
		if v.Nulls.Get(69) {
			t.Errorf("converted col %d: entry 69 became null", ci)
		}
	}
	for _, v := range ps.repVecs {
		if v != nil && v.Len() != 70 {
			t.Errorf("converted repeated col grew to %d", v.Len())
		}
	}
}

// --- Batch cursors ---

// drainCursor collects every selected row index of a cursor.
func drainCursor(t *testing.T, cur *BatchCursor) []int32 {
	t.Helper()
	var all []int32
	buf := make([]int32, 8) // tiny batches: exercise multi-batch paths
	for {
		sel := cur.Next(buf)
		if sel == nil {
			return all
		}
		if len(sel) == 0 {
			t.Fatal("cursor returned an empty non-final batch")
		}
		all = append(all, sel...)
	}
}

func TestBatchCursorMatchesRowScans(t *testing.T) {
	schema := value.TRecord(
		value.F("a", value.TInt),
		value.F("s", value.TString),
		value.F("items", value.TList(value.TRecord(value.F("q", value.TInt)))),
	)
	rec := func(a int64, s string, qs ...int64) value.Value {
		items := make([]value.Value, len(qs))
		for i, q := range qs {
			items[i] = value.VRecord(value.VInt(q))
		}
		return value.VRecord(value.VInt(a), value.VString(s), value.VList(items...))
	}
	recs := []value.Value{
		rec(1, "x", 10, 11),
		rec(2, "y"), // empty list: placeholder row, skipped by flat scans
		rec(3, "z", 30),
		rec(4, "w", 40, 41, 42),
	}
	for _, layout := range []Layout{LayoutColumnar, LayoutParquet} {
		b, err := NewBuilder(layout, schema)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range recs {
			b.Add(r)
		}
		st := b.Finish()
		bs := st.(BatchSource)

		// Record granularity over non-repeated cols must match ScanRecords.
		cols := []int{0, 1}
		var want [][]value.Value
		if _, err := st.ScanRecords(cols, func(row []value.Value) error {
			want = append(want, append([]value.Value(nil), row...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		cur, ok := bs.BatchCursor(false, cols)
		if !ok {
			t.Fatalf("%v: record-granularity batches unsupported", layout)
		}
		sel := drainCursor(t, cur)
		if len(sel) != len(want) {
			t.Fatalf("%v: %d selected rows, want %d", layout, len(sel), len(want))
		}
		chunk := make([]value.Value, len(sel)*len(cols))
		FillRows(cur.Cols, sel, chunk, len(cols))
		for k := range sel {
			for i := range cols {
				if !chunk[k*len(cols)+i].Equal(want[k][i]) {
					t.Errorf("%v: row %d col %d = %v, want %v",
						layout, k, i, chunk[k*len(cols)+i], want[k][i])
				}
			}
		}

		// Repeated column at record granularity must refuse (row path
		// reports the projection error).
		if _, ok := bs.BatchCursor(false, []int{2}); ok {
			t.Errorf("%v: repeated column should not batch at record granularity", layout)
		}

		// Flat granularity: columnar serves batches (skipping placeholder
		// rows), Parquet's FSM view does not.
		curF, okF := bs.BatchCursor(true, []int{0, 2})
		if layout == LayoutParquet {
			if okF {
				t.Error("parquet flat view should not batch (FSM assembly)")
			}
			continue
		}
		if !okF {
			t.Fatal("columnar flat batches unsupported")
		}
		var wantF [][]value.Value
		if _, err := st.ScanFlat([]int{0, 2}, func(row []value.Value) error {
			wantF = append(wantF, append([]value.Value(nil), row...))
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		selF := drainCursor(t, curF)
		if len(selF) != len(wantF) {
			t.Fatalf("flat: %d selected rows, want %d", len(selF), len(wantF))
		}
		chunkF := make([]value.Value, len(selF)*2)
		FillRows(curF.Cols, selF, chunkF, 2)
		for k := range selF {
			for i := 0; i < 2; i++ {
				if !chunkF[k*2+i].Equal(wantF[k][i]) {
					t.Errorf("flat row %d col %d = %v, want %v",
						k, i, chunkF[k*2+i], wantF[k][i])
				}
			}
		}
	}
}
