package value

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Path names a (possibly nested) field: a sequence of record field names.
// Descending through a List<Record> field is written as the list field name
// followed by the element field name, e.g. {"lineitems", "l_quantity"}.
type Path []string

// ParsePath splits a dotted path string ("lineitems.l_quantity").
func ParsePath(s string) Path {
	if s == "" {
		return nil
	}
	return Path(strings.Split(s, "."))
}

// String joins the path with dots.
func (p Path) String() string { return strings.Join(p, ".") }

// Equal reports element-wise equality.
func (p Path) Equal(o Path) bool {
	if len(p) != len(o) {
		return false
	}
	for i := range p {
		if p[i] != o[i] {
			return false
		}
	}
	return true
}

// HasPrefix reports whether p starts with prefix.
func (p Path) HasPrefix(prefix Path) bool {
	if len(prefix) > len(p) {
		return false
	}
	for i := range prefix {
		if p[i] != prefix[i] {
			return false
		}
	}
	return true
}

// Resolve walks the path through a (record) type. It descends through List
// types implicitly (the path names the list field, then continues into the
// element type). It returns the leaf type and whether any List was crossed
// (i.e. the path addresses repeated data).
func (p Path) Resolve(t *Type) (leaf *Type, repeated bool, err error) {
	cur := t
	for i, name := range p {
		if cur.Kind == List {
			cur = cur.Elem
		}
		if cur.Kind != Record {
			return nil, false, fmt.Errorf("value: path %q: %q is not a record", p, Path(p[:i]))
		}
		idx, ft := cur.FieldIndex(name)
		if idx < 0 {
			return nil, false, fmt.Errorf("value: path %q: no field %q in %s", p, name, cur)
		}
		cur = ft
		if cur.Kind == List {
			repeated = true
		}
	}
	if cur.Kind == List {
		cur = cur.Elem
	}
	return cur, repeated, nil
}

// LeafColumn describes one leaf of a nested schema in document order,
// together with the Dremel repetition/definition levels needed by the
// Parquet-style store.
type LeafColumn struct {
	Path     Path
	Type     *Type // primitive leaf type
	MaxRep   int   // 0 for non-repeated leaves, 1 under the (single) list
	MaxDef   int   // number of optional/repeated ancestors incl. the leaf's own optionality
	Repeated bool  // true iff some ancestor is a List
}

// Name returns the dotted column name.
func (c LeafColumn) Name() string { return c.Path.String() }

// leafMemo caches LeafColumns results by schema pointer. Types are
// immutable once built and long-lived schemas keep stable pointers (table
// schemas, cache-entry schemas, interned wire schemas), so decode-heavy
// paths — a client unpacking one result batch per response, the spill tier
// re-admitting entries — skip the walk entirely. Short-lived schema
// pointers just miss; bounded by wholesale reset so they cannot grow the
// memo without limit. The cached slice is shared: callers must not mutate
// what LeafColumnsCached returns.
var leafMemo sync.Map // *Type -> []LeafColumn

var leafMemoLen atomic.Int64

const leafMemoCap = 4096

// LeafColumnsCached is LeafColumns with a pointer-keyed memo. Errors are
// not cached (they are a schema-construction bug, not a hot path).
func LeafColumnsCached(t *Type) ([]LeafColumn, error) {
	if got, ok := leafMemo.Load(t); ok {
		return got.([]LeafColumn), nil
	}
	cols, err := LeafColumns(t)
	if err != nil {
		return nil, err
	}
	if leafMemoLen.Add(1) > leafMemoCap {
		leafMemo.Clear()
		leafMemoLen.Store(1)
	}
	leafMemo.Store(t, cols)
	return cols, nil
}

// LeafColumns enumerates every primitive leaf of a record schema in
// depth-first field order. It returns an error if the schema nests more
// than one repeated level on any root-to-leaf path, or if a list element is
// itself a list: the storage layer supports at most one repeated ancestor
// per leaf (which covers all datasets in the paper; see DESIGN.md).
func LeafColumns(t *Type) ([]LeafColumn, error) {
	if t == nil || t.Kind != Record {
		return nil, fmt.Errorf("value: LeafColumns requires a record schema, got %s", t)
	}
	var out []LeafColumn
	var walk func(t *Type, path Path, rep, def int) error
	walk = func(t *Type, path Path, rep, def int) error {
		switch t.Kind {
		case Record:
			for _, f := range t.Fields {
				fdef := def
				if f.Optional {
					fdef++
				}
				ft := f.Type
				frep := rep
				if ft.Kind == List {
					if rep >= 1 {
						return fmt.Errorf("value: schema nests repeated field %q under another repeated field", f.Name)
					}
					frep = rep + 1
					fdef++ // a repeated field is definable (empty list ⇒ def < this level)
					ft = ft.Elem
					if ft.Kind == List {
						return fmt.Errorf("value: list-of-list field %q unsupported", f.Name)
					}
				}
				np := append(append(Path{}, path...), f.Name)
				if ft.Kind == Record {
					if err := walk(ft, np, frep, fdef); err != nil {
						return err
					}
				} else {
					out = append(out, LeafColumn{Path: np, Type: ft, MaxRep: frep, MaxDef: fdef, Repeated: frep > 0})
				}
			}
			return nil
		default:
			return fmt.Errorf("value: unexpected non-record in walk: %s", t)
		}
	}
	if err := walk(t, nil, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// repMemo caches RepeatedField by schema pointer, under the same
// stable-pointer reasoning (and the same bound) as leafMemo. A nil path
// (flat schema) is cached too — that is the common, allocation-heavy case.
var repMemo sync.Map // *Type -> Path

var repMemoLen atomic.Int64

// RepeatedFieldCached is RepeatedField with a pointer-keyed memo. The
// cached path is shared: callers must not mutate it.
func RepeatedFieldCached(t *Type) Path {
	if got, ok := repMemo.Load(t); ok {
		return got.(Path)
	}
	p := RepeatedField(t)
	if repMemoLen.Add(1) > leafMemoCap {
		repMemo.Clear()
		repMemoLen.Store(1)
	}
	repMemo.Store(t, p)
	return p
}

// RepeatedField returns the path of the single repeated (list) field of the
// schema, or nil if the schema is flat. The single-repeated-field constraint
// is validated by LeafColumns.
func RepeatedField(t *Type) Path {
	if t == nil || t.Kind != Record {
		return nil
	}
	var find func(t *Type, path Path) Path
	find = func(t *Type, path Path) Path {
		for _, f := range t.Fields {
			np := append(append(Path{}, path...), f.Name)
			if f.Type.Kind == List {
				return np
			}
			if f.Type.Kind == Record {
				if p := find(f.Type, np); p != nil {
					return p
				}
			}
		}
		return nil
	}
	return find(t, nil)
}

// Get extracts the value at path p from a record value typed by t.
// Crossing a List yields the list value itself (callers that need per-element
// access flatten first). Missing optional fields yield VNull.
func Get(v Value, t *Type, p Path) Value {
	cur, curT := v, t
	for _, name := range p {
		if curT.Kind == List {
			// Address the list itself; deeper access requires flattening.
			return cur
		}
		if curT.Kind != Record || cur.Kind != Record {
			return VNull
		}
		idx, ft := curT.FieldIndex(name)
		if idx < 0 || idx >= len(cur.L) {
			return VNull
		}
		cur, curT = cur.L[idx], ft
	}
	return cur
}

// FlattenSchema returns the flat record type whose fields are the dotted
// leaf columns of t, in document order. This is the schema of the relational
// (flattened) view of nested data described in §4 of the paper.
func FlattenSchema(t *Type) (*Type, []LeafColumn, error) {
	cols, err := LeafColumns(t)
	if err != nil {
		return nil, nil, err
	}
	fields := make([]Field, len(cols))
	for i, c := range cols {
		fields[i] = Field{Name: c.Name(), Type: c.Type, Optional: c.MaxDef > 0}
	}
	return TRecord(fields...), cols, nil
}

// FlattenRecord expands one nested record into flat rows (one per element of
// the repeated field; exactly one row if the schema is flat or the list is
// absent... an empty or null list yields zero rows, matching inner-unnest
// semantics). Each row is aligned with the columns from LeafColumns.
func FlattenRecord(v Value, t *Type, cols []LeafColumn) [][]Value {
	card := 1
	hasRepeated := false
	for _, c := range cols {
		if c.Repeated {
			hasRepeated = true
			break
		}
	}
	var listVal Value
	var listPath Path
	if hasRepeated {
		listPath = RepeatedField(t)
		listVal = Get(v, t, listPath)
		if listVal.Kind != List {
			card = 0
		} else {
			card = len(listVal.L)
		}
	}
	if card == 0 {
		return nil
	}
	rows := make([][]Value, card)
	for r := 0; r < card; r++ {
		row := make([]Value, len(cols))
		for ci, c := range cols {
			if !c.Repeated {
				row[ci] = Get(v, t, c.Path)
				continue
			}
			elem := listVal.L[r]
			// Element path: the suffix of c.Path after the list path.
			suffix := c.Path[len(listPath):]
			elemT := mustListElem(t, listPath)
			row[ci] = Get(elem, elemT, suffix)
		}
		rows[r] = row
	}
	return rows
}

func mustListElem(t *Type, listPath Path) *Type {
	cur := t
	for _, name := range listPath {
		_, ft := cur.FieldIndex(name)
		cur = ft
	}
	return cur.Elem
}

// RecordCardinality returns the number of flat rows the record expands to.
func RecordCardinality(v Value, t *Type) int {
	lp := RepeatedField(t)
	if lp == nil {
		return 1
	}
	lv := Get(v, t, lp)
	if lv.Kind != List {
		return 0
	}
	return len(lv.L)
}
