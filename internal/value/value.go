// Package value defines the type system and value model shared by every
// layer of the engine: a small set of primitive kinds plus nested lists and
// records, mirroring the data model of raw CSV (flat records) and JSON
// (arbitrarily nested records) sources.
//
// The package also enumerates the leaf columns of a nested schema together
// with their Dremel-style maximum repetition and definition levels, which is
// the information the Parquet-style store in internal/store needs to shred
// and reassemble records.
package value

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind identifies the dynamic type of a Value or the shape of a Type.
type Kind uint8

// The supported kinds. Null is the kind of missing/undefined values (JSON
// fields absent from an object, or SQL NULL).
const (
	Null Kind = iota
	Bool
	Int
	Float
	String
	List
	Record
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Null:
		return "null"
	case Bool:
		return "bool"
	case Int:
		return "int"
	case Float:
		return "float"
	case String:
		return "string"
	case List:
		return "list"
	case Record:
		return "record"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Field is a named component of a record type.
type Field struct {
	Name     string
	Type     *Type
	Optional bool // field may be absent (JSON objects with missing keys)
}

// Type describes the static type of values. A Type is a tree: primitives are
// leaves, List has an Elem, Record has Fields.
type Type struct {
	Kind   Kind
	Elem   *Type   // set iff Kind == List
	Fields []Field // set iff Kind == Record
}

// Primitive singletons. Types are immutable once built, so sharing is safe.
var (
	TBool   = &Type{Kind: Bool}
	TInt    = &Type{Kind: Int}
	TFloat  = &Type{Kind: Float}
	TString = &Type{Kind: String}
)

// TList returns a list type with the given element type.
func TList(elem *Type) *Type { return &Type{Kind: List, Elem: elem} }

// TRecord returns a record type with the given fields.
func TRecord(fields ...Field) *Type { return &Type{Kind: Record, Fields: fields} }

// F is shorthand for constructing a required Field.
func F(name string, t *Type) Field { return Field{Name: name, Type: t} }

// FOpt is shorthand for constructing an optional Field.
func FOpt(name string, t *Type) Field { return Field{Name: name, Type: t, Optional: true} }

// IsNumeric reports whether the type is Int or Float.
func (t *Type) IsNumeric() bool { return t.Kind == Int || t.Kind == Float }

// IsPrimitive reports whether the type is a leaf (non-list, non-record).
func (t *Type) IsPrimitive() bool { return t.Kind != List && t.Kind != Record }

// FieldIndex returns the index and type of the named field of a record type,
// or (-1, nil) if absent or t is not a record.
func (t *Type) FieldIndex(name string) (int, *Type) {
	if t == nil || t.Kind != Record {
		return -1, nil
	}
	for i := range t.Fields {
		if t.Fields[i].Name == name {
			return i, t.Fields[i].Type
		}
	}
	return -1, nil
}

// String renders a canonical representation of the type, used in plan
// canonicalization and error messages.
func (t *Type) String() string {
	var b strings.Builder
	t.writeTo(&b)
	return b.String()
}

func (t *Type) writeTo(b *strings.Builder) {
	if t == nil {
		b.WriteString("<nil>")
		return
	}
	switch t.Kind {
	case List:
		b.WriteString("list<")
		t.Elem.writeTo(b)
		b.WriteByte('>')
	case Record:
		b.WriteString("record{")
		for i, f := range t.Fields {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(f.Name)
			if f.Optional {
				b.WriteByte('?')
			}
			b.WriteByte(':')
			f.Type.writeTo(b)
		}
		b.WriteByte('}')
	default:
		b.WriteString(t.Kind.String())
	}
}

// Equal reports deep structural equality of two types, including field names
// and optionality.
func (t *Type) Equal(o *Type) bool {
	if t == o {
		return true
	}
	if t == nil || o == nil || t.Kind != o.Kind {
		return false
	}
	switch t.Kind {
	case List:
		return t.Elem.Equal(o.Elem)
	case Record:
		if len(t.Fields) != len(o.Fields) {
			return false
		}
		for i := range t.Fields {
			if t.Fields[i].Name != o.Fields[i].Name ||
				t.Fields[i].Optional != o.Fields[i].Optional ||
				!t.Fields[i].Type.Equal(o.Fields[i].Type) {
				return false
			}
		}
		return true
	default:
		return true
	}
}

// Value is the runtime representation of data flowing through the engine.
// It is a tagged union; exactly the field matching Kind is meaningful.
// The zero Value is Null.
type Value struct {
	Kind Kind
	B    bool
	I    int64
	F    float64
	S    string
	L    []Value // List elements or Record fields (aligned with Type.Fields)
}

// Convenience constructors.

// VNull is the null value.
var VNull = Value{Kind: Null}

// VBool wraps a bool.
func VBool(b bool) Value { return Value{Kind: Bool, B: b} }

// VInt wraps an int64.
func VInt(i int64) Value { return Value{Kind: Int, I: i} }

// VFloat wraps a float64.
func VFloat(f float64) Value { return Value{Kind: Float, F: f} }

// VString wraps a string.
func VString(s string) Value { return Value{Kind: String, S: s} }

// VList wraps a slice of values as a list.
func VList(elems ...Value) Value { return Value{Kind: List, L: elems} }

// VRecord wraps field values (aligned with the record type's Fields).
func VRecord(fields ...Value) Value { return Value{Kind: Record, L: fields} }

// IsNull reports whether the value is null.
func (v Value) IsNull() bool { return v.Kind == Null }

// AsFloat coerces a numeric value to float64. Non-numeric values yield 0.
func (v Value) AsFloat() float64 {
	switch v.Kind {
	case Int:
		return float64(v.I)
	case Float:
		return v.F
	case Bool:
		if v.B {
			return 1
		}
	}
	return 0
}

// AsInt coerces a numeric value to int64. Non-numeric values yield 0.
func (v Value) AsInt() int64 {
	switch v.Kind {
	case Int:
		return v.I
	case Float:
		return int64(v.F)
	case Bool:
		if v.B {
			return 1
		}
	}
	return 0
}

// Truthy reports whether the value counts as true in a predicate position.
func (v Value) Truthy() bool {
	switch v.Kind {
	case Bool:
		return v.B
	case Int:
		return v.I != 0
	case Float:
		return v.F != 0
	case String:
		return v.S != ""
	case Null:
		return false
	}
	return true
}

// Compare orders two values: -1 if v < o, 0 if equal, +1 if v > o.
// Numeric kinds compare numerically across Int/Float. Null sorts first.
// Lists and records compare lexicographically element-wise.
func (v Value) Compare(o Value) int {
	if v.Kind == Null || o.Kind == Null {
		switch {
		case v.Kind == Null && o.Kind == Null:
			return 0
		case v.Kind == Null:
			return -1
		default:
			return 1
		}
	}
	if numericKind(v.Kind) && numericKind(o.Kind) {
		a, b := v.AsFloat(), o.AsFloat()
		// Avoid float rounding when both sides are ints.
		if v.Kind == Int && o.Kind == Int {
			switch {
			case v.I < o.I:
				return -1
			case v.I > o.I:
				return 1
			}
			return 0
		}
		switch {
		case a < b:
			return -1
		case a > b:
			return 1
		}
		return 0
	}
	if v.Kind != o.Kind {
		// Mixed non-numeric kinds: order by kind tag for determinism.
		switch {
		case v.Kind < o.Kind:
			return -1
		case v.Kind > o.Kind:
			return 1
		}
		return 0
	}
	switch v.Kind {
	case Bool:
		switch {
		case !v.B && o.B:
			return -1
		case v.B && !o.B:
			return 1
		}
		return 0
	case String:
		return strings.Compare(v.S, o.S)
	case List, Record:
		n := min(len(v.L), len(o.L))
		for i := 0; i < n; i++ {
			if c := v.L[i].Compare(o.L[i]); c != 0 {
				return c
			}
		}
		switch {
		case len(v.L) < len(o.L):
			return -1
		case len(v.L) > len(o.L):
			return 1
		}
		return 0
	}
	return 0
}

func numericKind(k Kind) bool { return k == Int || k == Float || k == Bool }

// Equal reports deep equality (Compare == 0 plus identical kinds for
// non-numeric values; numeric values are equal if they compare equal).
func (v Value) Equal(o Value) bool { return v.Compare(o) == 0 }

// String renders the value for display and debugging; strings are quoted.
func (v Value) String() string {
	var b strings.Builder
	v.writeTo(&b)
	return b.String()
}

func (v Value) writeTo(b *strings.Builder) {
	switch v.Kind {
	case Null:
		b.WriteString("null")
	case Bool:
		b.WriteString(strconv.FormatBool(v.B))
	case Int:
		b.WriteString(strconv.FormatInt(v.I, 10))
	case Float:
		b.WriteString(strconv.FormatFloat(v.F, 'g', -1, 64))
	case String:
		b.WriteString(strconv.Quote(v.S))
	case List:
		b.WriteByte('[')
		for i := range v.L {
			if i > 0 {
				b.WriteByte(',')
			}
			v.L[i].writeTo(b)
		}
		b.WriteByte(']')
	case Record:
		b.WriteByte('{')
		for i := range v.L {
			if i > 0 {
				b.WriteByte(',')
			}
			v.L[i].writeTo(b)
		}
		b.WriteByte('}')
	}
}

// ShallowSize estimates the in-memory footprint of the value in bytes,
// used for cache accounting (B in the benefit metric).
func (v Value) ShallowSize() int64 {
	const header = 16 // tag + padding, approximate
	switch v.Kind {
	case String:
		return header + int64(len(v.S))
	case List, Record:
		sz := int64(header)
		for i := range v.L {
			sz += v.L[i].ShallowSize()
		}
		return sz
	default:
		return header
	}
}
