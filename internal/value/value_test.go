package value

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func orderSchema() *Type {
	return TRecord(
		F("o_orderkey", TInt),
		F("o_totalprice", TFloat),
		F("o_comment", TString),
		F("lineitems", TList(TRecord(
			F("l_quantity", TInt),
			F("l_extendedprice", TFloat),
		))),
	)
}

func TestTypeStringAndEqual(t *testing.T) {
	s := orderSchema()
	want := "record{o_orderkey:int,o_totalprice:float,o_comment:string," +
		"lineitems:list<record{l_quantity:int,l_extendedprice:float}>}"
	if got := s.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if !s.Equal(orderSchema()) {
		t.Error("structurally equal schemas reported unequal")
	}
	other := TRecord(F("x", TInt))
	if s.Equal(other) {
		t.Error("different schemas reported equal")
	}
	if s.Equal(nil) {
		t.Error("Equal(nil) should be false")
	}
}

func TestFieldIndex(t *testing.T) {
	s := orderSchema()
	i, ft := s.FieldIndex("o_totalprice")
	if i != 1 || ft.Kind != Float {
		t.Errorf("FieldIndex(o_totalprice) = (%d,%v)", i, ft)
	}
	if i, _ := s.FieldIndex("nope"); i != -1 {
		t.Errorf("FieldIndex(nope) = %d, want -1", i)
	}
	if i, _ := TInt.FieldIndex("x"); i != -1 {
		t.Errorf("FieldIndex on non-record = %d, want -1", i)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{VInt(1), VInt(2), -1},
		{VInt(2), VInt(2), 0},
		{VInt(3), VInt(2), 1},
		{VInt(2), VFloat(2.5), -1},
		{VFloat(2.5), VInt(2), 1},
		{VFloat(1.5), VFloat(1.5), 0},
		{VNull, VInt(0), -1},
		{VInt(0), VNull, 1},
		{VNull, VNull, 0},
		{VString("a"), VString("b"), -1},
		{VString("b"), VString("b"), 0},
		{VBool(false), VBool(true), -1},
		{VList(VInt(1)), VList(VInt(1), VInt(2)), -1},
		{VList(VInt(2)), VList(VInt(1), VInt(9)), 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v,%v) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestCompareAntisymmetry(t *testing.T) {
	gen := func(seed int64) Value {
		r := rand.New(rand.NewSource(seed))
		return randomValue(r, 2)
	}
	f := func(s1, s2 int64) bool {
		a, b := gen(s1), gen(s2)
		return a.Compare(b) == -b.Compare(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func randomValue(r *rand.Rand, depth int) Value {
	k := r.Intn(5)
	if depth > 0 && r.Intn(3) == 0 {
		k = 5 + r.Intn(2)
	}
	switch k {
	case 0:
		return VNull
	case 1:
		return VBool(r.Intn(2) == 0)
	case 2:
		return VInt(int64(r.Intn(100)))
	case 3:
		return VFloat(float64(r.Intn(100)) / 4)
	case 4:
		return VString(string(rune('a' + r.Intn(26))))
	case 5:
		n := r.Intn(3)
		l := make([]Value, n)
		for i := range l {
			l[i] = randomValue(r, depth-1)
		}
		return VList(l...)
	default:
		n := 1 + r.Intn(3)
		l := make([]Value, n)
		for i := range l {
			l[i] = randomValue(r, depth-1)
		}
		return VRecord(l...)
	}
}

func TestPathResolve(t *testing.T) {
	s := orderSchema()
	leaf, rep, err := (Path{"lineitems", "l_quantity"}).Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Kind != Int || !rep {
		t.Errorf("Resolve(lineitems.l_quantity) = (%v, repeated=%v)", leaf, rep)
	}
	leaf, rep, err = (Path{"o_totalprice"}).Resolve(s)
	if err != nil {
		t.Fatal(err)
	}
	if leaf.Kind != Float || rep {
		t.Errorf("Resolve(o_totalprice) = (%v, repeated=%v)", leaf, rep)
	}
	if _, _, err := (Path{"nope"}).Resolve(s); err == nil {
		t.Error("Resolve(nope) should fail")
	}
	if _, _, err := (Path{"o_orderkey", "deeper"}).Resolve(s); err == nil {
		t.Error("Resolve through a primitive should fail")
	}
}

func TestLeafColumns(t *testing.T) {
	s := orderSchema()
	cols, err := LeafColumns(s)
	if err != nil {
		t.Fatal(err)
	}
	wantNames := []string{"o_orderkey", "o_totalprice", "o_comment",
		"lineitems.l_quantity", "lineitems.l_extendedprice"}
	if len(cols) != len(wantNames) {
		t.Fatalf("got %d cols, want %d", len(cols), len(wantNames))
	}
	for i, c := range cols {
		if c.Name() != wantNames[i] {
			t.Errorf("col %d = %q, want %q", i, c.Name(), wantNames[i])
		}
	}
	if cols[0].MaxRep != 0 || cols[0].Repeated {
		t.Errorf("o_orderkey should be non-repeated: %+v", cols[0])
	}
	if cols[3].MaxRep != 1 || !cols[3].Repeated || cols[3].MaxDef != 1 {
		t.Errorf("lineitems.l_quantity levels wrong: %+v", cols[3])
	}
}

func TestLeafColumnsOptional(t *testing.T) {
	s := TRecord(
		F("a", TInt),
		FOpt("b", TString),
		FOpt("sub", TRecord(F("x", TInt), FOpt("y", TFloat))),
	)
	cols, err := LeafColumns(s)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]LeafColumn{}
	for _, c := range cols {
		byName[c.Name()] = c
	}
	if byName["a"].MaxDef != 0 {
		t.Errorf("a MaxDef = %d, want 0", byName["a"].MaxDef)
	}
	if byName["b"].MaxDef != 1 {
		t.Errorf("b MaxDef = %d, want 1", byName["b"].MaxDef)
	}
	if byName["sub.x"].MaxDef != 1 {
		t.Errorf("sub.x MaxDef = %d, want 1", byName["sub.x"].MaxDef)
	}
	if byName["sub.y"].MaxDef != 2 {
		t.Errorf("sub.y MaxDef = %d, want 2", byName["sub.y"].MaxDef)
	}
}

func TestLeafColumnsRejectsNestedLists(t *testing.T) {
	s := TRecord(F("outer", TList(TRecord(F("inner", TList(TRecord(F("x", TInt))))))))
	if _, err := LeafColumns(s); err == nil {
		t.Error("nested repeated fields should be rejected")
	}
	s2 := TRecord(F("ll", TList(TList(TInt))))
	if _, err := LeafColumns(s2); err == nil {
		t.Error("list-of-list should be rejected")
	}
}

func TestRepeatedField(t *testing.T) {
	if p := RepeatedField(orderSchema()); p.String() != "lineitems" {
		t.Errorf("RepeatedField = %q", p)
	}
	flat := TRecord(F("a", TInt))
	if p := RepeatedField(flat); p != nil {
		t.Errorf("RepeatedField(flat) = %q, want nil", p)
	}
}

func sampleOrder() Value {
	return VRecord(
		VInt(7),
		VFloat(1234.5),
		VString("fast"),
		VList(
			VRecord(VInt(3), VFloat(10.0)),
			VRecord(VInt(5), VFloat(20.5)),
		),
	)
}

func TestGet(t *testing.T) {
	s := orderSchema()
	v := sampleOrder()
	if got := Get(v, s, Path{"o_orderkey"}); got.I != 7 {
		t.Errorf("Get(o_orderkey) = %v", got)
	}
	if got := Get(v, s, Path{"o_comment"}); got.S != "fast" {
		t.Errorf("Get(o_comment) = %v", got)
	}
	if got := Get(v, s, Path{"lineitems"}); got.Kind != List || len(got.L) != 2 {
		t.Errorf("Get(lineitems) = %v", got)
	}
	if got := Get(v, s, Path{"missing"}); !got.IsNull() {
		t.Errorf("Get(missing) = %v, want null", got)
	}
}

func TestFlattenRecord(t *testing.T) {
	s := orderSchema()
	cols, err := LeafColumns(s)
	if err != nil {
		t.Fatal(err)
	}
	rows := FlattenRecord(sampleOrder(), s, cols)
	if len(rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(rows))
	}
	want := [][]Value{
		{VInt(7), VFloat(1234.5), VString("fast"), VInt(3), VFloat(10.0)},
		{VInt(7), VFloat(1234.5), VString("fast"), VInt(5), VFloat(20.5)},
	}
	if !reflect.DeepEqual(rows, want) {
		t.Errorf("FlattenRecord = %v, want %v", rows, want)
	}

	// Empty list ⇒ zero rows (inner-unnest semantics).
	empty := VRecord(VInt(1), VFloat(0), VString(""), VList())
	if rows := FlattenRecord(empty, s, cols); len(rows) != 0 {
		t.Errorf("empty list flattened to %d rows, want 0", len(rows))
	}

	// Flat schema ⇒ exactly one row.
	flat := TRecord(F("a", TInt), F("b", TString))
	fcols, _ := LeafColumns(flat)
	rows = FlattenRecord(VRecord(VInt(1), VString("x")), flat, fcols)
	if len(rows) != 1 || rows[0][0].I != 1 || rows[0][1].S != "x" {
		t.Errorf("flat FlattenRecord = %v", rows)
	}
}

func TestFlattenSchema(t *testing.T) {
	fs, cols, err := FlattenSchema(orderSchema())
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Fields) != 5 || len(cols) != 5 {
		t.Fatalf("flatten schema fields = %d", len(fs.Fields))
	}
	if fs.Fields[3].Name != "lineitems.l_quantity" || !fs.Fields[3].Optional {
		t.Errorf("field 3 = %+v", fs.Fields[3])
	}
}

func TestRecordCardinality(t *testing.T) {
	s := orderSchema()
	if c := RecordCardinality(sampleOrder(), s); c != 2 {
		t.Errorf("cardinality = %d, want 2", c)
	}
	flat := TRecord(F("a", TInt))
	if c := RecordCardinality(VRecord(VInt(1)), flat); c != 1 {
		t.Errorf("flat cardinality = %d, want 1", c)
	}
}

func TestValueStringAndTruthy(t *testing.T) {
	v := VRecord(VInt(1), VList(VString("a"), VNull), VBool(true))
	want := `{1,["a",null],true}`
	if got := v.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
	if VNull.Truthy() || !VInt(3).Truthy() || VString("").Truthy() || !VFloat(0.1).Truthy() {
		t.Error("Truthy misbehaves")
	}
}

func TestShallowSize(t *testing.T) {
	if VInt(1).ShallowSize() != 16 {
		t.Errorf("int size = %d", VInt(1).ShallowSize())
	}
	if VString("abcd").ShallowSize() != 20 {
		t.Errorf("string size = %d", VString("abcd").ShallowSize())
	}
	lst := VList(VInt(1), VInt(2))
	if lst.ShallowSize() != 16+32 {
		t.Errorf("list size = %d", lst.ShallowSize())
	}
}
