// Package wire defines the recached client/server protocol: length-prefixed
// binary frames carrying pipelined, id-matched requests and responses.
//
// Framing. Every message is one frame: a uint32 little-endian payload
// length followed by that many payload bytes. Frames are independent, so a
// connection can carry any number of in-flight requests; responses are
// matched to requests by the id both sides echo, not by arrival order.
//
// Request payload:  op u8 | id u64 | op-specific body
// Response payload: status u8 (0 ok, 1 error) | id u64 | op u8 | body
//
// Variable-length fields are u32-length-prefixed byte strings. Query
// results travel as columnar batches: the result's record schema (encoded
// structurally, see encType) plus an RCS1 stream (internal/store's spill
// serialization) of the result rows in the Parquet layout — the same bytes
// a disk spill would hold, so neither side boxes rows to cross the socket.
//
// Robustness. Decoding is defensive: every length read from the stream is
// validated against the bytes actually present before any allocation is
// sized from it, so truncated frames, oversized lengths, and garbage bytes
// produce errors — never a panic, and never an allocation larger than the
// frame itself (ReadFrame additionally caps whole frames at max bytes).
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"
	"sync/atomic"

	"recache/internal/cache"
	"recache/internal/value"
)

// MaxFrame is the default frame-size cap: large enough for any result
// batch the harness produces, small enough that a garbage length prefix
// cannot make a reader allocate without bound.
const MaxFrame = 64 << 20

const (
	maxFields = 4096 // schema width cap (record fields, result columns)
	maxDepth  = 32   // schema nesting cap
)

// Op identifies a request kind; responses echo the op they answer.
type Op byte

// The protocol's request kinds.
const (
	OpPing Op = iota + 1
	OpQuery
	OpExplain
	OpStats
	OpTables
	OpSchema
	OpTableStats
	OpEntries
	OpRegisterCSV
	OpRegisterJSON
	// Fleet ops (sharded tier). OpFleet returns the daemon's fleet topology
	// so a client dialing any one shard can discover the rest. The lease
	// ops implement fleet-wide single-flight: a shard missing on a cache
	// key it does not own asks the key's owner for a short-TTL
	// materialization lease before building (see internal/shard).
	OpFleet
	OpLeaseAcquire
	OpLeaseRelease
	// Resilience ops. OpReplicate pushes one cache entry's RCS1 payload to
	// the shard next in the key's rendezvous order (replica placement, and
	// the drain handoff); the receiver admits it as a disk-tier entry.
	// OpLeave announces a member's graceful departure so survivors drop it
	// from their topology before its socket goes away.
	OpReplicate
	OpLeave
	opMax
)

// String names the op for errors and logs.
func (o Op) String() string {
	switch o {
	case OpPing:
		return "ping"
	case OpQuery:
		return "query"
	case OpExplain:
		return "explain"
	case OpStats:
		return "stats"
	case OpTables:
		return "tables"
	case OpSchema:
		return "schema"
	case OpTableStats:
		return "table-stats"
	case OpEntries:
		return "entries"
	case OpRegisterCSV:
		return "register-csv"
	case OpRegisterJSON:
		return "register-json"
	case OpFleet:
		return "fleet"
	case OpLeaseAcquire:
		return "lease-acquire"
	case OpLeaseRelease:
		return "lease-release"
	case OpReplicate:
		return "replicate"
	case OpLeave:
		return "leave"
	}
	return fmt.Sprintf("op(%d)", byte(o))
}

// Request is one client→server message.
type Request struct {
	ID uint64
	Op Op

	SQL    string // OpQuery, OpExplain
	Name   string // OpSchema, OpTableStats, OpRegister*
	Path   string // OpRegister*
	Schema string // OpRegister* (schema DSL; empty infers for CSV)
	Delim  byte   // OpRegisterCSV

	// Lease ops: the cache key being leased (shard.Key form), the
	// requesting process's holder token, and the requested TTL
	// (OpLeaseAcquire only; the server clamps it to shard.MaxTTL).
	Key       string // OpLeaseAcquire, OpLeaseRelease
	Holder    uint64 // OpLeaseAcquire, OpLeaseRelease
	TTLMillis uint32 // OpLeaseAcquire

	// OpReplicate: the entry's dataset name travels in Name, its canonical
	// predicate in Pred, and its RCS1-serialized payload in Payload.
	// OpLeave: the departing member's shard id in ShardID.
	Pred    string
	Payload []byte
	ShardID int32
}

// Result is a query result as it crosses the wire: column names, the
// result-record schema, and the rows as an RCS1-serialized Parquet-layout
// store (decode with store.ReadParquetBytes against Schema).
type Result struct {
	Columns   []string
	Schema    *value.Type
	Batch     []byte
	WallNanos int64
	NumRows   int64
}

// TableStats carries one table's provider-level raw-scan counters
// (the shared-scan and pushdown bench metrics, observable over the wire).
type TableStats struct {
	RawScans     int64
	PushScans    int64
	SkippedEarly int64
}

// Response is one server→client message. Exactly one of the body fields is
// set, selected by Op; a non-empty Err means the request failed and no
// body is present.
type Response struct {
	ID  uint64
	Op  Op
	Err string

	Result      *Result     // OpQuery
	Text        string      // OpExplain, OpSchema
	Tables      []string    // OpTables
	StatsJSON   []byte      // OpStats: JSON-encoded Stats
	EntriesJSON []byte      // OpEntries: JSON-encoded []Entry
	TableStats  *TableStats // OpTableStats
	Fleet       *Fleet      // OpFleet
	Lease       *Lease      // OpLeaseAcquire
}

// FleetShard is one member of an OpFleet topology response.
type FleetShard struct {
	ID   int32
	Addr string
}

// Fleet is the OpFleet payload: the fleet list (same order on every
// member) and the answering daemon's own position in it.
type Fleet struct {
	Self   int32
	Shards []FleetShard
}

// Lease is the OpLeaseAcquire payload: whether the materialization lease
// was granted and when the granted (or, on denial, the blocking) lease
// expires.
type Lease struct {
	Granted          bool
	ExpiresUnixMicro int64
}

// Stats is the OpStats payload: the engine's cache counters plus the
// daemon's serving counters. It travels as JSON inside the binary frame so
// counter additions never break older clients.
type Stats struct {
	Cache  cache.Stats `json:"cache"`
	Server ServerStats `json:"server"`
}

// ServerStats counts the daemon's serving activity.
type ServerStats struct {
	// Sessions counts connections accepted since start; ActiveSessions the
	// ones currently open.
	Sessions       int64 `json:"sessions"`
	ActiveSessions int64 `json:"active_sessions"`
	// Requests counts requests read; InFlight the ones currently executing.
	Requests int64 `json:"requests"`
	InFlight int64 `json:"in_flight"`
	// Errors counts requests answered with an error response.
	Errors int64 `json:"errors"`
	// Draining reports a shutdown in progress (finishing in-flight work).
	Draining bool `json:"draining"`
}

// Entry mirrors recache.EntryInfo for the OpEntries payload.
type Entry struct {
	ID        uint64 `json:"id"`
	Table     string `json:"table"`
	Predicate string `json:"predicate"`
	Mode      string `json:"mode"`
	Layout    string `json:"layout"`
	Bytes     int64  `json:"bytes"`
	Reuses    int64  `json:"reuses"`
}

// ErrFrameTooLarge reports a frame whose declared length exceeds the cap.
var ErrFrameTooLarge = errors.New("wire: frame exceeds size limit")

// ReadFrame reads one frame payload. The declared length is validated
// against max before the payload buffer is allocated, so a corrupt or
// hostile length prefix cannot trigger an oversized allocation.
func ReadFrame(r io.Reader, max uint32) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, errors.New("wire: empty frame")
	}
	if n > max {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return payload, nil
}

// ReadFrameInto is ReadFrame with a caller-owned scratch buffer: the
// returned payload aliases buf when it fits. Only safe when the payload
// does not outlive the next read — ParseRequest copies every field out, so
// a server read loop qualifies; a client must not use this (Result.Batch
// aliases the payload).
func ReadFrameInto(r io.Reader, max uint32, buf []byte) (payload, scratch []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 {
		return nil, buf, errors.New("wire: empty frame")
	}
	if n > max {
		return nil, buf, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, max)
	}
	if uint32(cap(buf)) < n {
		buf = make([]byte, n)
	}
	payload = buf[:n]
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, buf, fmt.Errorf("wire: truncated frame: %w", err)
	}
	return payload, buf, nil
}

// --- encoding ---

// enc builds one frame: the payload grows in b after a 4-byte length
// placeholder; finish backpatches the prefix.
type enc struct{ b []byte }

// framePool recycles encoded frame buffers. Both peers build one frame per
// message and drop it the moment it is copied into the connection's bufio
// writer, so without reuse the encoder is a steady allocator (and its
// append-growth a steady copier) on the hot path. Callers hand frames back
// with RecycleFrame once the bytes are consumed.
var framePool sync.Pool // *[]byte

func newEnc() *enc {
	if p, ok := framePool.Get().(*[]byte); ok {
		return &enc{b: (*p)[:4]}
	}
	return &enc{b: make([]byte, 4, 512)}
}

// RecycleFrame returns a frame produced by EncodeRequest or EncodeResponse
// to the encoder pool. The caller must be completely done with the bytes.
// Oversized frames (a large result batch) are dropped, not pinned.
func RecycleFrame(frame []byte) {
	if cap(frame) < 4 || cap(frame) > 1<<16 {
		return
	}
	framePool.Put(&frame)
}

func (e *enc) u8(x byte) { e.b = append(e.b, x) }

func (e *enc) u32(x uint32) {
	e.b = binary.LittleEndian.AppendUint32(e.b, x)
}

func (e *enc) u64(x uint64) {
	e.b = binary.LittleEndian.AppendUint64(e.b, x)
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

func (e *enc) blob(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

// finish backpatches the length prefix and returns the full frame.
func (e *enc) finish() ([]byte, error) {
	n := len(e.b) - 4
	if n <= 0 {
		return nil, errors.New("wire: empty frame")
	}
	if n > MaxFrame {
		return nil, fmt.Errorf("%w: %d > %d", ErrFrameTooLarge, n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(e.b[:4], uint32(n))
	return e.b, nil
}

// EncodeRequest serializes req as one complete frame (prefix included).
func EncodeRequest(req *Request) ([]byte, error) {
	e := newEnc()
	e.u8(byte(req.Op))
	e.u64(req.ID)
	switch req.Op {
	case OpPing, OpStats, OpTables, OpEntries, OpFleet:
	case OpQuery, OpExplain:
		e.str(req.SQL)
	case OpSchema, OpTableStats:
		e.str(req.Name)
	case OpRegisterCSV:
		e.str(req.Name)
		e.str(req.Path)
		e.str(req.Schema)
		e.u8(req.Delim)
	case OpRegisterJSON:
		e.str(req.Name)
		e.str(req.Path)
		e.str(req.Schema)
	case OpLeaseAcquire:
		e.str(req.Key)
		e.u64(req.Holder)
		e.u32(req.TTLMillis)
	case OpLeaseRelease:
		e.str(req.Key)
		e.u64(req.Holder)
	case OpReplicate:
		e.str(req.Name)
		e.str(req.Pred)
		e.blob(req.Payload)
	case OpLeave:
		e.u32(uint32(req.ShardID))
	default:
		return nil, fmt.Errorf("wire: encode request: unknown op %s", req.Op)
	}
	return e.finish()
}

// EncodeResponse serializes resp as one complete frame (prefix included).
// Responses that cannot fit the frame cap (a result batch past MaxFrame)
// return ErrFrameTooLarge; the server downgrades those to error responses.
func EncodeResponse(resp *Response) ([]byte, error) {
	e := newEnc()
	status := byte(0)
	if resp.Err != "" {
		status = 1
	}
	e.u8(status)
	e.u64(resp.ID)
	e.u8(byte(resp.Op))
	if status == 1 {
		e.str(resp.Err)
		return e.finish()
	}
	switch resp.Op {
	case OpPing, OpRegisterCSV, OpRegisterJSON, OpLeaseRelease, OpReplicate, OpLeave:
	case OpQuery:
		r := resp.Result
		if r == nil {
			return nil, errors.New("wire: encode response: query result missing")
		}
		if len(r.Columns) > maxFields {
			return nil, fmt.Errorf("wire: encode response: %d result columns exceeds cap %d", len(r.Columns), maxFields)
		}
		e.u64(uint64(r.WallNanos))
		e.u64(uint64(r.NumRows))
		e.u32(uint32(len(r.Columns)))
		for _, c := range r.Columns {
			e.str(c)
		}
		if err := encType(e, r.Schema, 0); err != nil {
			return nil, err
		}
		e.blob(r.Batch)
	case OpExplain, OpSchema:
		e.str(resp.Text)
	case OpTables:
		if len(resp.Tables) > maxFields {
			return nil, fmt.Errorf("wire: encode response: %d tables exceeds cap %d", len(resp.Tables), maxFields)
		}
		e.u32(uint32(len(resp.Tables)))
		for _, t := range resp.Tables {
			e.str(t)
		}
	case OpStats:
		e.blob(resp.StatsJSON)
	case OpEntries:
		e.blob(resp.EntriesJSON)
	case OpTableStats:
		ts := resp.TableStats
		if ts == nil {
			return nil, errors.New("wire: encode response: table stats missing")
		}
		e.u64(uint64(ts.RawScans))
		e.u64(uint64(ts.PushScans))
		e.u64(uint64(ts.SkippedEarly))
	case OpFleet:
		f := resp.Fleet
		if f == nil {
			return nil, errors.New("wire: encode response: fleet missing")
		}
		if len(f.Shards) > maxFields {
			return nil, fmt.Errorf("wire: encode response: %d shards exceeds cap %d", len(f.Shards), maxFields)
		}
		e.u32(uint32(f.Self))
		e.u32(uint32(len(f.Shards)))
		for _, s := range f.Shards {
			e.u32(uint32(s.ID))
			e.str(s.Addr)
		}
	case OpLeaseAcquire:
		l := resp.Lease
		if l == nil {
			return nil, errors.New("wire: encode response: lease missing")
		}
		g := byte(0)
		if l.Granted {
			g = 1
		}
		e.u8(g)
		e.u64(uint64(l.ExpiresUnixMicro))
	default:
		return nil, fmt.Errorf("wire: encode response: unknown op %s", resp.Op)
	}
	return e.finish()
}

// encType writes a value.Type structurally: kind byte, then the element
// type (lists) or the field list (records). Primitives are a single byte.
func encType(e *enc, t *value.Type, depth int) error {
	if t == nil {
		return errors.New("wire: encode type: nil type")
	}
	if depth > maxDepth {
		return fmt.Errorf("wire: encode type: nesting exceeds %d", maxDepth)
	}
	e.u8(byte(t.Kind))
	switch t.Kind {
	case value.Bool, value.Int, value.Float, value.String:
		return nil
	case value.List:
		return encType(e, t.Elem, depth+1)
	case value.Record:
		if len(t.Fields) > maxFields {
			return fmt.Errorf("wire: encode type: %d fields exceeds cap %d", len(t.Fields), maxFields)
		}
		e.u32(uint32(len(t.Fields)))
		for _, f := range t.Fields {
			e.str(f.Name)
			opt := byte(0)
			if f.Optional {
				opt = 1
			}
			e.u8(opt)
			if err := encType(e, f.Type, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	return fmt.Errorf("wire: encode type: unsupported kind %s", t.Kind)
}

// --- decoding ---

// dec consumes one frame payload with bounds-checked reads.
type dec struct {
	b   []byte
	off int
}

func (d *dec) remaining() int { return len(d.b) - d.off }

func (d *dec) take(n int) ([]byte, error) {
	if n < 0 || n > d.remaining() {
		return nil, fmt.Errorf("wire: payload truncated at offset %d (need %d bytes, have %d)", d.off, n, d.remaining())
	}
	p := d.b[d.off : d.off+n]
	d.off += n
	return p, nil
}

func (d *dec) u8() (byte, error) {
	p, err := d.take(1)
	if err != nil {
		return 0, err
	}
	return p[0], nil
}

func (d *dec) u32() (uint32, error) {
	p, err := d.take(4)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(p), nil
}

func (d *dec) u64() (uint64, error) {
	p, err := d.take(8)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(p), nil
}

// str reads a length-prefixed string. The length is checked against the
// remaining payload before the string is materialized.
func (d *dec) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	p, err := d.take(int(n))
	if err != nil {
		return "", err
	}
	return string(p), nil
}

// blob reads a length-prefixed byte string; the result aliases the payload.
func (d *dec) blob() ([]byte, error) {
	n, err := d.u32()
	if err != nil {
		return nil, err
	}
	return d.take(int(n))
}

// done rejects trailing garbage after a fully parsed message.
func (d *dec) done() error {
	if d.remaining() != 0 {
		return fmt.Errorf("wire: %d trailing bytes in payload", d.remaining())
	}
	return nil
}

// count reads a u32 element count and validates it against the smallest
// possible per-element encoding, so a corrupt count cannot size a huge
// allocation from a short payload.
func (d *dec) count(perElem int, cap int) (int, error) {
	n, err := d.u32()
	if err != nil {
		return 0, err
	}
	if int(n) > cap {
		return 0, fmt.Errorf("wire: element count %d exceeds cap %d", n, cap)
	}
	if int(n)*perElem > d.remaining() {
		return 0, fmt.Errorf("wire: element count %d exceeds payload (%d bytes left)", n, d.remaining())
	}
	return int(n), nil
}

// ParseRequest decodes one request payload (the bytes ReadFrame returned).
func ParseRequest(payload []byte) (*Request, error) {
	d := &dec{b: payload}
	op, err := d.u8()
	if err != nil {
		return nil, err
	}
	if op == 0 || Op(op) >= opMax {
		return nil, fmt.Errorf("wire: unknown request op %d", op)
	}
	req := &Request{Op: Op(op)}
	if req.ID, err = d.u64(); err != nil {
		return nil, err
	}
	switch req.Op {
	case OpPing, OpStats, OpTables, OpEntries, OpFleet:
	case OpQuery, OpExplain:
		if req.SQL, err = d.str(); err != nil {
			return nil, err
		}
	case OpSchema, OpTableStats:
		if req.Name, err = d.str(); err != nil {
			return nil, err
		}
	case OpRegisterCSV, OpRegisterJSON:
		if req.Name, err = d.str(); err != nil {
			return nil, err
		}
		if req.Path, err = d.str(); err != nil {
			return nil, err
		}
		if req.Schema, err = d.str(); err != nil {
			return nil, err
		}
		if req.Op == OpRegisterCSV {
			if req.Delim, err = d.u8(); err != nil {
				return nil, err
			}
		}
	case OpLeaseAcquire, OpLeaseRelease:
		if req.Key, err = d.str(); err != nil {
			return nil, err
		}
		if req.Holder, err = d.u64(); err != nil {
			return nil, err
		}
		if req.Op == OpLeaseAcquire {
			if req.TTLMillis, err = d.u32(); err != nil {
				return nil, err
			}
		}
	case OpReplicate:
		if req.Name, err = d.str(); err != nil {
			return nil, err
		}
		if req.Pred, err = d.str(); err != nil {
			return nil, err
		}
		b, err := d.blob()
		if err != nil {
			return nil, err
		}
		// Copy: the server parses requests out of a reused read buffer, and
		// the replica admission outlives the next frame.
		req.Payload = append([]byte(nil), b...)
	case OpLeave:
		id, err := d.u32()
		if err != nil {
			return nil, err
		}
		req.ShardID = int32(id)
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return req, nil
}

// ParseResponse decodes one response payload. Byte-slice fields (Batch,
// StatsJSON, EntriesJSON) alias the payload buffer.
// ResponseID extracts the request id from a response payload without
// parsing anything else: the client's demux loop routes frames on it and
// leaves full parsing to whichever caller claims the response.
func ResponseID(payload []byte) (uint64, error) {
	if len(payload) < 10 {
		return 0, errors.New("wire: response payload too short")
	}
	return binary.LittleEndian.Uint64(payload[1:9]), nil
}

// ResponseHeader is the scalar prefix of a response: everything a caller
// that does not materialize rows needs from a query result.
type ResponseHeader struct {
	ID        uint64
	Op        Op
	Err       string
	WallNanos int64
	NumRows   int64
}

// ParseResponseHeader decodes only the header of a response payload — for
// OpQuery it stops before the column names, schema, and batch bytes, so a
// row-discarding caller pays no decode allocations at all. The returned
// Err string is copied; nothing aliases the payload.
func ParseResponseHeader(payload []byte) (ResponseHeader, error) {
	d := &dec{b: payload}
	var h ResponseHeader
	status, err := d.u8()
	if err != nil {
		return h, err
	}
	if status > 1 {
		return h, fmt.Errorf("wire: unknown response status %d", status)
	}
	if h.ID, err = d.u64(); err != nil {
		return h, err
	}
	op, err := d.u8()
	if err != nil {
		return h, err
	}
	if op == 0 || Op(op) >= opMax {
		return h, fmt.Errorf("wire: unknown response op %d", op)
	}
	h.Op = Op(op)
	if status == 1 {
		if h.Err, err = d.str(); err != nil {
			return h, err
		}
		if h.Err == "" {
			return h, errors.New("wire: error response with empty message")
		}
		return h, nil
	}
	if h.Op == OpQuery {
		wall, err := d.u64()
		if err != nil {
			return h, err
		}
		h.WallNanos = int64(wall)
		rows, err := d.u64()
		if err != nil {
			return h, err
		}
		h.NumRows = int64(rows)
	}
	return h, nil
}

func ParseResponse(payload []byte) (*Response, error) {
	d := &dec{b: payload}
	status, err := d.u8()
	if err != nil {
		return nil, err
	}
	if status > 1 {
		return nil, fmt.Errorf("wire: unknown response status %d", status)
	}
	resp := &Response{}
	if resp.ID, err = d.u64(); err != nil {
		return nil, err
	}
	op, err := d.u8()
	if err != nil {
		return nil, err
	}
	if op == 0 || Op(op) >= opMax {
		return nil, fmt.Errorf("wire: unknown response op %d", op)
	}
	resp.Op = Op(op)
	if status == 1 {
		if resp.Err, err = d.str(); err != nil {
			return nil, err
		}
		if resp.Err == "" {
			return nil, errors.New("wire: error response with empty message")
		}
		return resp, d.done()
	}
	switch resp.Op {
	case OpPing, OpRegisterCSV, OpRegisterJSON, OpLeaseRelease, OpReplicate, OpLeave:
	case OpQuery:
		r := &Result{}
		wall, err := d.u64()
		if err != nil {
			return nil, err
		}
		r.WallNanos = int64(wall)
		rows, err := d.u64()
		if err != nil {
			return nil, err
		}
		r.NumRows = int64(rows)
		ncols, err := d.count(4, maxFields)
		if err != nil {
			return nil, err
		}
		r.Columns = make([]string, ncols)
		for i := range r.Columns {
			if r.Columns[i], err = d.str(); err != nil {
				return nil, err
			}
		}
		tstart := d.off
		if r.Schema, err = decType(d, 0); err != nil {
			return nil, err
		}
		r.Schema = internType(d.b[tstart:d.off], r.Schema)
		if r.Batch, err = d.blob(); err != nil {
			return nil, err
		}
		resp.Result = r
	case OpExplain, OpSchema:
		if resp.Text, err = d.str(); err != nil {
			return nil, err
		}
	case OpTables:
		n, err := d.count(4, maxFields)
		if err != nil {
			return nil, err
		}
		resp.Tables = make([]string, n)
		for i := range resp.Tables {
			if resp.Tables[i], err = d.str(); err != nil {
				return nil, err
			}
		}
	case OpStats:
		if resp.StatsJSON, err = d.blob(); err != nil {
			return nil, err
		}
	case OpEntries:
		if resp.EntriesJSON, err = d.blob(); err != nil {
			return nil, err
		}
	case OpTableStats:
		ts := &TableStats{}
		for _, dst := range []*int64{&ts.RawScans, &ts.PushScans, &ts.SkippedEarly} {
			x, err := d.u64()
			if err != nil {
				return nil, err
			}
			*dst = int64(x)
		}
		resp.TableStats = ts
	case OpFleet:
		f := &Fleet{}
		self, err := d.u32()
		if err != nil {
			return nil, err
		}
		f.Self = int32(self)
		// A shard entry costs at least 8 bytes (id + addr length).
		n, err := d.count(8, maxFields)
		if err != nil {
			return nil, err
		}
		f.Shards = make([]FleetShard, n)
		for i := range f.Shards {
			id, err := d.u32()
			if err != nil {
				return nil, err
			}
			f.Shards[i].ID = int32(id)
			if f.Shards[i].Addr, err = d.str(); err != nil {
				return nil, err
			}
		}
		resp.Fleet = f
	case OpLeaseAcquire:
		l := &Lease{}
		g, err := d.u8()
		if err != nil {
			return nil, err
		}
		l.Granted = g == 1
		exp, err := d.u64()
		if err != nil {
			return nil, err
		}
		l.ExpiresUnixMicro = int64(exp)
		resp.Lease = l
	}
	if err := d.done(); err != nil {
		return nil, err
	}
	return resp, nil
}

// typeInterner deduplicates decoded result schemas by their encoded bytes:
// a client replaying queries sees the same schema in every response, and
// handing back one shared *value.Type (immutable once built) lets decode
// layers cache per-schema work by pointer. Bounded by wholesale reset so a
// peer sending endless distinct schemas cannot grow it without limit.
var typeInterner sync.Map // string (encoded type) -> *value.Type

var typeInternerLen atomic.Int64

const typeInternerCap = 1024

func internType(enc []byte, t *value.Type) *value.Type {
	if got, ok := typeInterner.Load(string(enc)); ok {
		return got.(*value.Type)
	}
	if typeInternerLen.Add(1) > typeInternerCap {
		typeInterner.Clear()
		typeInternerLen.Store(1)
	}
	typeInterner.Store(string(enc), t)
	return t
}

// decType decodes a value.Type, enforcing the depth and width caps. Every
// field count is validated against the remaining payload (a field costs at
// least 6 bytes: name length, optional flag, kind) before allocation.
func decType(d *dec, depth int) (*value.Type, error) {
	if depth > maxDepth {
		return nil, fmt.Errorf("wire: type nesting exceeds %d", maxDepth)
	}
	k, err := d.u8()
	if err != nil {
		return nil, err
	}
	switch value.Kind(k) {
	case value.Bool:
		return value.TBool, nil
	case value.Int:
		return value.TInt, nil
	case value.Float:
		return value.TFloat, nil
	case value.String:
		return value.TString, nil
	case value.List:
		elem, err := decType(d, depth+1)
		if err != nil {
			return nil, err
		}
		return value.TList(elem), nil
	case value.Record:
		n, err := d.count(6, maxFields)
		if err != nil {
			return nil, err
		}
		fields := make([]value.Field, n)
		for i := range fields {
			if fields[i].Name, err = d.str(); err != nil {
				return nil, err
			}
			opt, err := d.u8()
			if err != nil {
				return nil, err
			}
			fields[i].Optional = opt == 1
			if fields[i].Type, err = decType(d, depth+1); err != nil {
				return nil, err
			}
		}
		return value.TRecord(fields...), nil
	}
	return nil, fmt.Errorf("wire: unsupported type kind %d", k)
}
