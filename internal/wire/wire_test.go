package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"

	"recache/internal/value"
)

// allRequests covers every op with every op-specific field populated.
func allRequests() []*Request {
	return []*Request{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpQuery, SQL: "SELECT COUNT(*) FROM lineitem"},
		{ID: 3, Op: OpExplain, SQL: "SELECT * FROM t WHERE a = 'x'"},
		{ID: 4, Op: OpStats},
		{ID: 5, Op: OpTables},
		{ID: 6, Op: OpSchema, Name: "lineitem"},
		{ID: 7, Op: OpTableStats, Name: "orders"},
		{ID: 8, Op: OpEntries},
		{ID: 9, Op: OpRegisterCSV, Name: "t", Path: "/tmp/t.csv", Schema: "a int, b string", Delim: '|'},
		{ID: 10, Op: OpRegisterJSON, Name: "j", Path: "/tmp/j.json", Schema: "a int"},
		{ID: 11, Op: OpQuery, SQL: ""}, // empty SQL still frames
		{ID: 12, Op: OpFleet},
		{ID: 13, Op: OpLeaseAcquire, Key: "lineitem|l_quantity in [1,5]", Holder: 0xDEADBEEF, TTLMillis: 3000},
		{ID: 14, Op: OpLeaseRelease, Key: "lineitem|l_quantity in [1,5]", Holder: 0xDEADBEEF},
		{ID: 15, Op: OpReplicate, Name: "lineitem", Pred: "(l_quantity<=5)", Payload: []byte("RCS1 payload stand-in")},
		{ID: 16, Op: OpReplicate, Name: "t", Pred: "true"},
		{ID: 17, Op: OpLeave, ShardID: 2},
	}
}

func resultSchema() *value.Type {
	return value.TRecord(
		value.F("a", value.TInt),
		value.FOpt("b", value.TString),
		value.F("c", value.TList(value.TRecord(
			value.F("x", value.TFloat),
			value.F("y", value.TBool),
		))),
	)
}

func allResponses() []*Response {
	return []*Response{
		{ID: 1, Op: OpPing},
		{ID: 2, Op: OpQuery, Result: &Result{
			Columns:   []string{"a", "b", "c"},
			Schema:    resultSchema(),
			Batch:     []byte("RCS1 payload stand-in"),
			WallNanos: 123456,
			NumRows:   7,
		}},
		{ID: 3, Op: OpExplain, Text: "Scan(t)\n  Filter(a = 'x')"},
		{ID: 4, Op: OpStats, StatsJSON: []byte(`{"cache":{},"server":{}}`)},
		{ID: 5, Op: OpTables, Tables: []string{"lineitem", "orders"}},
		{ID: 6, Op: OpSchema, Text: "a int, b string"},
		{ID: 7, Op: OpTableStats, TableStats: &TableStats{RawScans: 3, PushScans: 2, SkippedEarly: 99}},
		{ID: 8, Op: OpEntries, EntriesJSON: []byte(`[]`)},
		{ID: 9, Op: OpRegisterCSV},
		{ID: 10, Op: OpRegisterJSON},
		{ID: 11, Op: OpQuery, Err: "parse error: unexpected token"},
		{ID: 12, Op: OpTables, Tables: []string{}},
		{ID: 13, Op: OpFleet, Fleet: &Fleet{Self: 1, Shards: []FleetShard{
			{ID: 0, Addr: "unix:/tmp/s0.sock"},
			{ID: 1, Addr: "unix:/tmp/s1.sock"},
			{ID: 2, Addr: "tcp:127.0.0.1:7878"},
		}}},
		{ID: 14, Op: OpFleet, Fleet: &Fleet{Self: 0, Shards: []FleetShard{{ID: 0, Addr: "/lone.sock"}}}},
		{ID: 15, Op: OpLeaseAcquire, Lease: &Lease{Granted: true, ExpiresUnixMicro: 1754550000123456}},
		{ID: 16, Op: OpLeaseAcquire, Lease: &Lease{Granted: false, ExpiresUnixMicro: 1754550000123456}},
		{ID: 17, Op: OpLeaseRelease},
		{ID: 18, Op: OpLeaseAcquire, Err: "daemon is not part of a fleet"},
		{ID: 19, Op: OpReplicate},
		{ID: 20, Op: OpLeave},
		{ID: 21, Op: OpReplicate, Err: "disk tier disabled"},
	}
}

func frameBody(t *testing.T, frame []byte) []byte {
	t.Helper()
	payload, err := ReadFrame(bytes.NewReader(frame), MaxFrame)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	return payload
}

func TestRequestRoundTrip(t *testing.T) {
	for _, req := range allRequests() {
		frame, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("encode %s: %v", req.Op, err)
		}
		got, err := ParseRequest(frameBody(t, frame))
		if err != nil {
			t.Fatalf("parse %s: %v", req.Op, err)
		}
		if !reflect.DeepEqual(got, req) {
			t.Errorf("%s: round trip mismatch:\n got %+v\nwant %+v", req.Op, got, req)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	for _, resp := range allResponses() {
		frame, err := EncodeResponse(resp)
		if err != nil {
			t.Fatalf("encode %s: %v", resp.Op, err)
		}
		got, err := ParseResponse(frameBody(t, frame))
		if err != nil {
			t.Fatalf("parse %s: %v", resp.Op, err)
		}
		// An error response carries no body; nil-vs-empty slice differences
		// are not meaningful for the byte fields.
		if got.ID != resp.ID || got.Op != resp.Op || got.Err != resp.Err {
			t.Errorf("%s: header mismatch: got %+v want %+v", resp.Op, got, resp)
		}
		if resp.Err != "" {
			continue
		}
		if resp.Result != nil {
			if got.Result == nil {
				t.Fatalf("%s: result dropped", resp.Op)
			}
			if !reflect.DeepEqual(got.Result.Columns, resp.Result.Columns) ||
				!bytes.Equal(got.Result.Batch, resp.Result.Batch) ||
				got.Result.WallNanos != resp.Result.WallNanos ||
				got.Result.NumRows != resp.Result.NumRows {
				t.Errorf("%s: result mismatch: got %+v want %+v", resp.Op, got.Result, resp.Result)
			}
			if !typeEqual(got.Result.Schema, resp.Result.Schema) {
				t.Errorf("%s: schema mismatch: got %v want %v", resp.Op, got.Result.Schema, resp.Result.Schema)
			}
		}
		if got.Text != resp.Text {
			t.Errorf("%s: text mismatch", resp.Op)
		}
		if len(got.Tables) != len(resp.Tables) || (len(resp.Tables) > 0 && !reflect.DeepEqual(got.Tables, resp.Tables)) {
			t.Errorf("%s: tables mismatch: got %v want %v", resp.Op, got.Tables, resp.Tables)
		}
		if !bytes.Equal(got.StatsJSON, resp.StatsJSON) || !bytes.Equal(got.EntriesJSON, resp.EntriesJSON) {
			t.Errorf("%s: json body mismatch", resp.Op)
		}
		if !reflect.DeepEqual(got.TableStats, resp.TableStats) {
			t.Errorf("%s: table stats mismatch", resp.Op)
		}
		if !reflect.DeepEqual(got.Fleet, resp.Fleet) {
			t.Errorf("%s: fleet mismatch: got %+v want %+v", resp.Op, got.Fleet, resp.Fleet)
		}
		if !reflect.DeepEqual(got.Lease, resp.Lease) {
			t.Errorf("%s: lease mismatch: got %+v want %+v", resp.Op, got.Lease, resp.Lease)
		}
	}
}

func typeEqual(a, b *value.Type) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Kind != b.Kind || len(a.Fields) != len(b.Fields) {
		return false
	}
	if a.Kind == value.List {
		return typeEqual(a.Elem, b.Elem)
	}
	for i := range a.Fields {
		if a.Fields[i].Name != b.Fields[i].Name ||
			a.Fields[i].Optional != b.Fields[i].Optional ||
			!typeEqual(a.Fields[i].Type, b.Fields[i].Type) {
			return false
		}
	}
	return true
}

func TestReadFrameLimits(t *testing.T) {
	// Declared length past the cap must error before allocating.
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 1<<31)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), MaxFrame); err == nil {
		t.Fatal("oversized frame accepted")
	}
	// Truncated payload.
	binary.LittleEndian.PutUint32(hdr[:], 100)
	if _, err := ReadFrame(bytes.NewReader(append(hdr[:], 1, 2, 3)), MaxFrame); err == nil {
		t.Fatal("truncated frame accepted")
	}
	// Zero-length frame.
	binary.LittleEndian.PutUint32(hdr[:], 0)
	if _, err := ReadFrame(bytes.NewReader(hdr[:]), MaxFrame); err == nil {
		t.Fatal("empty frame accepted")
	}
	// EOF mid-header.
	if _, err := ReadFrame(bytes.NewReader([]byte{1, 2}), MaxFrame); err == nil {
		t.Fatal("short header accepted")
	}
	if _, err := ReadFrame(bytes.NewReader(nil), MaxFrame); err != io.EOF {
		t.Fatalf("want io.EOF on empty stream, got %v", err)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"unknown op":    {0xFF, 0, 0, 0, 0, 0, 0, 0, 0},
		"zero op":       {0, 0, 0, 0, 0, 0, 0, 0, 0},
		"truncated id":  {byte(OpPing), 1, 2},
		"trailing junk": append(mustEncodeReq(&Request{ID: 1, Op: OpPing}), 0xAA),
		"huge str len": func() []byte {
			// OpQuery with a string length far past the payload end.
			b := []byte{byte(OpQuery)}
			b = binary.LittleEndian.AppendUint64(b, 1)
			b = binary.LittleEndian.AppendUint32(b, 0xFFFFFFF0)
			return append(b, 'S')
		}(),
		"lease missing holder": func() []byte {
			// OpLeaseAcquire truncated after the key.
			b := []byte{byte(OpLeaseAcquire)}
			b = binary.LittleEndian.AppendUint64(b, 1)
			b = binary.LittleEndian.AppendUint32(b, 1)
			return append(b, 'k')
		}(),
		"fleet trailing junk": append(mustEncodeReq(&Request{ID: 2, Op: OpFleet}), 0x01),
		"replicate huge payload len": func() []byte {
			// OpReplicate with a payload length far past the frame end.
			b := []byte{byte(OpReplicate)}
			b = binary.LittleEndian.AppendUint64(b, 1)
			b = binary.LittleEndian.AppendUint32(b, 1)
			b = append(b, 't')
			b = binary.LittleEndian.AppendUint32(b, 4)
			b = append(b, "true"...)
			b = binary.LittleEndian.AppendUint32(b, 0xFFFFFF00)
			return append(b, 0xAB)
		}(),
		"leave truncated id": {byte(OpLeave), 1, 0, 0, 0, 0, 0, 0, 0, 2},
	}
	for name, payload := range cases {
		if _, err := ParseRequest(payload); err == nil {
			t.Errorf("%s: ParseRequest accepted garbage", name)
		}
	}
}

func mustEncodeReq(req *Request) []byte {
	frame, err := EncodeRequest(req)
	if err != nil {
		panic(err)
	}
	return frame[4:]
}

func mustEncodeResp(resp *Response) []byte {
	frame, err := EncodeResponse(resp)
	if err != nil {
		panic(err)
	}
	return frame[4:]
}

func TestParseResponseRejectsGarbage(t *testing.T) {
	// A count field claiming more elements than the payload can hold.
	b := []byte{0} // status ok
	b = binary.LittleEndian.AppendUint64(b, 1)
	b = append(b, byte(OpTables))
	b = binary.LittleEndian.AppendUint32(b, 1<<30) // element count
	if _, err := ParseResponse(b); err == nil {
		t.Fatal("huge element count accepted")
	}
	// Error response with empty message is malformed.
	e := []byte{1}
	e = binary.LittleEndian.AppendUint64(e, 1)
	e = append(e, byte(OpPing))
	e = binary.LittleEndian.AppendUint32(e, 0)
	if _, err := ParseResponse(e); err == nil {
		t.Fatal("empty error message accepted")
	}
}

func TestTypeCaps(t *testing.T) {
	// Nesting past maxDepth must be rejected by the encoder.
	deep := value.TInt
	for i := 0; i < maxDepth+2; i++ {
		deep = value.TList(deep)
	}
	_, err := EncodeResponse(&Response{ID: 1, Op: OpQuery, Result: &Result{
		Columns: []string{"a"}, Schema: deep,
	}})
	if err == nil || !strings.Contains(err.Error(), "nesting") {
		t.Fatalf("deep type accepted: %v", err)
	}
	// A decoded record claiming maxFields+1 fields must be rejected.
	b := []byte{0}
	b = binary.LittleEndian.AppendUint64(b, 1)
	b = append(b, byte(OpQuery))
	b = binary.LittleEndian.AppendUint64(b, 0) // wall
	b = binary.LittleEndian.AppendUint64(b, 0) // rows
	b = binary.LittleEndian.AppendUint32(b, 0) // ncols
	b = append(b, byte(value.Record))
	b = binary.LittleEndian.AppendUint32(b, maxFields+1)
	if _, err := ParseResponse(b); err == nil {
		t.Fatal("over-wide record accepted")
	}
}

func TestEncodeResponseTooLarge(t *testing.T) {
	_, err := EncodeResponse(&Response{ID: 1, Op: OpStats, StatsJSON: make([]byte, MaxFrame+1)})
	if err == nil {
		t.Fatal("frame past cap encoded")
	}
}

// FuzzParseRequest: arbitrary bytes must never panic, and anything that
// parses must re-encode to a payload that parses to the same request.
func FuzzParseRequest(f *testing.F) {
	for _, req := range allRequests() {
		f.Add(mustEncodeReq(req))
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := ParseRequest(data)
		if err != nil {
			return
		}
		frame, err := EncodeRequest(req)
		if err != nil {
			t.Fatalf("re-encode of parsed request failed: %v", err)
		}
		again, err := ParseRequest(frame[4:])
		if err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
		if !reflect.DeepEqual(req, again) {
			t.Fatalf("round trip unstable: %+v vs %+v", req, again)
		}
	})
}

// FuzzParseResponse: arbitrary bytes must never panic and every length or
// count read from the payload must be validated before allocation (the
// fuzzer's OOM detector catches violations).
func FuzzParseResponse(f *testing.F) {
	for _, resp := range allResponses() {
		f.Add(mustEncodeResp(resp))
	}
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := ParseResponse(data)
		if err != nil {
			return
		}
		frame, err := EncodeResponse(resp)
		if err != nil {
			t.Fatalf("re-encode of parsed response failed: %v", err)
		}
		if _, err := ParseResponse(frame[4:]); err != nil {
			t.Fatalf("re-parse failed: %v", err)
		}
	})
}

// FuzzReadFrame: a hostile stream must never panic ReadFrame or make it
// allocate past the cap it was given.
func FuzzReadFrame(f *testing.F) {
	f.Add([]byte{4, 0, 0, 0, 1, 2, 3, 4})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 0})
	f.Add([]byte{0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		payload, err := ReadFrame(bytes.NewReader(data), 1<<16)
		if err != nil {
			return
		}
		if len(payload) == 0 || len(payload) > 1<<16 {
			t.Fatalf("payload size %d outside (0, max]", len(payload))
		}
	})
}
