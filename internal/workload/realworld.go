package workload

import (
	"fmt"
	"math/rand"
)

// SymantecAttrs returns the numeric attributes of the Symantec-like JSON
// log (nested ones live under the urls list) and of the companion CSV.
func SymantecAttrs() (json []Attr, csv []Attr) {
	json = []Attr{
		{Name: "ts", Min: 1_500_000_000, Max: 1_600_000_000, Integer: true},
		{Name: "size", Min: 200, Max: 100200, Integer: true},
		{Name: "body_len", Min: 50, Max: 20050, Integer: true},
		{Name: "score", Min: 0, Max: 100},
		{Name: "urls.path_len", Min: 1, Max: 121, Integer: true, Nested: true},
		{Name: "urls.port", Min: 80, Max: 8080, Integer: true, Nested: true},
	}
	csv = []Attr{
		{Name: "cscore", Min: 0, Max: 100},
		{Name: "flags", Min: 0, Max: 255, Integer: true},
		{Name: "cluster", Min: 0, Max: 4999, Integer: true},
	}
	return json, csv
}

// SymantecOptions configures the Symantec workload mix (Figs. 10, 11a, 11c,
// 15a).
type SymantecOptions struct {
	JSONTable string // registered name of the JSON log
	CSVTable  string // registered name of the classification CSV
	N         int    // number of queries
	NestedPct int    // % of JSON queries accessing nested attributes
	JSONPct   int    // % of queries over the JSON table (rest over CSV)
	JoinPct   int    // % of queries joining CSV with JSON on id
	// NestedLastHalfOnly restricts nested access to the last 50% of the
	// sequence (the Fig. 11c setup).
	NestedLastHalfOnly bool
	Seed               int64
}

// Symantec generates the Symantec workload: SPA queries over the JSON log
// and the CSV classifications, plus an optional share of SPJ queries
// joining the two on the mail id.
func Symantec(o SymantecOptions) []string {
	r := rand.New(rand.NewSource(o.Seed))
	jsonAttrs, csvAttrs := SymantecAttrs()
	jsonFlat := nonNested(jsonAttrs)
	out := make([]string, o.N)
	for i := 0; i < o.N; i++ {
		pct := r.Intn(100)
		nestedOK := !o.NestedLastHalfOnly || i >= o.N/2
		if pct < o.JoinPct {
			// SPJ across CSV and JSON: join the classification output with
			// the raw log on the mail id.
			a := csvAttrs[r.Intn(len(csvAttrs))]
			lo, hi := randRange(r, a)
			ja := jsonFlat[r.Intn(len(jsonFlat))]
			out[i] = fmt.Sprintf(
				"SELECT COUNT(*), AVG(%s) FROM %s JOIN %s ON mail_id = id WHERE %s BETWEEN %s AND %s",
				ja.Name, o.CSVTable, o.JSONTable, a.Name, lo, hi)
			continue
		}
		if pct < o.JoinPct+(100-o.JoinPct)*o.JSONPct/100 {
			pool := jsonFlat
			if nestedOK && r.Intn(100) < o.NestedPct {
				pool = jsonAttrs
			}
			out[i] = spa(r, o.JSONTable, pool)
		} else {
			out[i] = spa(r, o.CSVTable, csvAttrs)
		}
	}
	return out
}

// YelpTables names the registered Yelp tables.
type YelpTables struct {
	Business, User, Review string
}

// yelp numeric attributes per table (non-nested; the nested fields of the
// Yelp-like schemas are string lists, accessed through COUNT aggregates).
func yelpAttrs() map[string][]Attr {
	return map[string][]Attr{
		"business": {
			{Name: "stars", Min: 1, Max: 5},
			{Name: "review_count", Min: 0, Max: 3000, Integer: true},
			{Name: "is_open", Min: 0, Max: 1, Integer: true},
		},
		"user": {
			{Name: "review_count", Min: 0, Max: 2000, Integer: true},
			{Name: "average_stars", Min: 1, Max: 5},
			{Name: "useful", Min: 0, Max: 10000, Integer: true},
			{Name: "fans", Min: 0, Max: 500, Integer: true},
		},
		"review": {
			{Name: "stars", Min: 1, Max: 5, Integer: true},
			{Name: "useful", Min: 0, Max: 100, Integer: true},
			{Name: "funny", Min: 0, Max: 50, Integer: true},
			{Name: "text_len", Min: 20, Max: 400, Integer: true},
		},
	}
}

// nested list column per Yelp table ("" = flat table).
func yelpNestedCol(which string) string {
	switch which {
	case "business":
		return "categories"
	case "user":
		return "friends"
	}
	return ""
}

// Yelp generates n SPA queries over the three Yelp files; nestedPct % of
// the business/user queries additionally aggregate over the table's string
// list (COUNT over the unnested elements), which forces flattened access.
func Yelp(tables YelpTables, n, nestedPct int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	attrs := yelpAttrs()
	names := map[string]string{"business": tables.Business, "user": tables.User,
		"review": tables.Review}
	kinds := []string{"business", "user", "review"}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		kind := kinds[r.Intn(len(kinds))]
		pool := attrs[kind]
		a := pool[r.Intn(len(pool))]
		p := pool[r.Intn(len(pool))]
		lo, hi := randRange(r, p)
		nestedCol := yelpNestedCol(kind)
		if nestedCol != "" && r.Intn(100) < nestedPct {
			out[i] = fmt.Sprintf(
				"SELECT COUNT(%s), AVG(%s) FROM %s WHERE %s BETWEEN %s AND %s",
				nestedCol, a.Name, names[kind], p.Name, lo, hi)
		} else {
			fn := []string{"SUM", "AVG", "MIN", "MAX"}[r.Intn(4)]
			out[i] = fmt.Sprintf(
				"SELECT %s(%s), COUNT(*) FROM %s WHERE %s BETWEEN %s AND %s",
				fn, a.Name, names[kind], p.Name, lo, hi)
		}
	}
	return out
}
