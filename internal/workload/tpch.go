package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// TPCHTables names the registered TPC-H tables; the Fig. 14 variant
// substitutes a JSON-backed lineitem.
type TPCHTables struct {
	Customer, Orders, Lineitem, Partsupp, Part string
}

// DefaultTPCHTables uses the generator's table names.
func DefaultTPCHTables() TPCHTables {
	return TPCHTables{Customer: "customer", Orders: "orders", Lineitem: "lineitem",
		Partsupp: "partsupp", Part: "part"}
}

// TPCHAttrs returns the numeric attributes of each TPC-H table.
func TPCHAttrs() map[string][]Attr {
	return map[string][]Attr{
		"customer": {
			{Name: "c_nationkey", Min: 0, Max: 24, Integer: true},
			{Name: "c_acctbal", Min: -999, Max: 9001},
		},
		"orders": {
			{Name: "o_totalprice", Min: 100, Max: 500100},
			{Name: "o_orderdate", Min: 19920101, Max: 19990101, Integer: true},
			{Name: "o_shippriority", Min: 0, Max: 1, Integer: true},
		},
		"lineitem": {
			{Name: "l_quantity", Min: 1, Max: 50, Integer: true},
			{Name: "l_extendedprice", Min: 900, Max: 100900},
			{Name: "l_discount", Min: 0, Max: 0.10},
			{Name: "l_tax", Min: 0, Max: 0.08},
			{Name: "l_shipdate", Min: 19920101, Max: 19990301, Integer: true},
		},
		"partsupp": {
			{Name: "ps_availqty", Min: 1, Max: 10000, Integer: true},
			{Name: "ps_supplycost", Min: 1, Max: 1001},
		},
		"part": {
			{Name: "p_size", Min: 1, Max: 50, Integer: true},
			{Name: "p_retailprice", Min: 900, Max: 2100},
		},
	}
}

// tpch join graph: table pairs and their join columns.
type tpchEdge struct {
	a, b       int // indices into the canonical table order
	aCol, bCol string
}

// canonical order: customer, orders, lineitem, partsupp, part.
var tpchEdges = []tpchEdge{
	{0, 1, "c_custkey", "o_custkey"},
	{1, 2, "o_orderkey", "l_orderkey"},
	{2, 3, "l_partkey", "ps_partkey"},
	{2, 4, "l_partkey", "p_partkey"},
}

// SPJ generates n select-project-join queries following §6's description:
// each table is included with probability 1/2 (bridging tables are added to
// keep the join graph connected), one aggregate attribute per included
// table, equi-joins on the common keys, and one random-selectivity range
// predicate per included table.
func SPJ(tables TPCHTables, n int, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	names := []string{tables.Customer, tables.Orders, tables.Lineitem,
		tables.Partsupp, tables.Part}
	attrKey := []string{"customer", "orders", "lineitem", "partsupp", "part"}
	attrs := TPCHAttrs()

	out := make([]string, n)
	for qi := 0; qi < n; qi++ {
		in := make([]bool, 5)
		cnt := 0
		for i := range in {
			if r.Intn(2) == 0 {
				in[i] = true
				cnt++
			}
		}
		if cnt == 0 {
			in[2] = true // default to lineitem
		}
		bridge(in)
		// Aggregates and predicates.
		var aggs, preds []string
		for i := 0; i < 5; i++ {
			if !in[i] {
				continue
			}
			pool := attrs[attrKey[i]]
			a := pool[r.Intn(len(pool))]
			fn := []string{"SUM", "AVG", "MIN", "MAX"}[r.Intn(4)]
			aggs = append(aggs, fmt.Sprintf("%s(%s)", fn, a.Name))
			p := pool[r.Intn(len(pool))]
			lo, hi := randRange(r, p)
			preds = append(preds, fmt.Sprintf("%s BETWEEN %s AND %s", p.Name, lo, hi))
		}
		// FROM clause: BFS over the join graph starting from the first
		// included table, emitting JOIN ... ON per edge.
		var from strings.Builder
		added := make([]bool, 5)
		first := -1
		for i := 0; i < 5; i++ {
			if in[i] {
				first = i
				break
			}
		}
		from.WriteString(names[first])
		added[first] = true
		for changed := true; changed; {
			changed = false
			for _, e := range tpchEdges {
				if in[e.a] && in[e.b] && added[e.a] != added[e.b] {
					nw, l, rr := e.b, e.aCol, e.bCol
					if added[e.b] {
						nw, l, rr = e.a, e.bCol, e.aCol
					}
					fmt.Fprintf(&from, " JOIN %s ON %s = %s", names[nw], l, rr)
					added[nw] = true
					changed = true
				}
			}
		}
		out[qi] = fmt.Sprintf("SELECT %s FROM %s WHERE %s",
			strings.Join(aggs, ", "), from.String(), strings.Join(preds, " AND "))
	}
	return out
}

// bridge adds the tables needed to connect the included set: customer
// reaches the rest through orders, part/partsupp through lineitem.
func bridge(in []bool) {
	cnt := 0
	for _, b := range in {
		if b {
			cnt++
		}
	}
	if cnt <= 1 {
		return
	}
	// customer with anything else needs orders.
	if in[0] && (in[2] || in[3] || in[4]) {
		in[1] = true
	}
	if in[0] && in[1] {
		// connected pair; continue below for the part side
		_ = cnt
	}
	// orders with part-side tables needs lineitem.
	if (in[0] || in[1]) && (in[3] || in[4]) {
		in[2] = true
	}
	if in[1] && in[2] {
		return
	}
	// part and partsupp together need lineitem.
	if in[3] && in[4] {
		in[2] = true
	}
	// customer+orders pair or orders+lineitem pair are already connected.
	if in[0] && !in[1] && (in[2] || in[3] || in[4]) {
		in[1] = true
	}
}
