// Package workload generates the query sequences of the paper's evaluation
// (§6): phased select-project-aggregate workloads over the nested
// orderLineitems file (Figs. 1, 9), select-project-join workloads over the
// TPC-H tables (Figs. 12–14), and the Symantec and Yelp workloads with
// nested-access and JSON-access knobs (Figs. 10, 11, 15). Generators are
// deterministic given a seed and emit SQL strings for the public engine.
package workload

import (
	"fmt"
	"math/rand"
	"strings"
)

// Attr describes a numeric attribute and its value domain, so predicates
// with random selectivity can be generated.
type Attr struct {
	Name    string
	Min     float64
	Max     float64
	Integer bool
	Nested  bool
}

// OrderLineitemsAttrs returns the numeric attributes of the nested
// orderLineitems file with the domains the generator uses.
func OrderLineitemsAttrs() []Attr {
	return []Attr{
		{Name: "o_custkey", Min: 1, Max: 150000, Integer: true},
		{Name: "o_totalprice", Min: 100, Max: 500100},
		{Name: "o_orderdate", Min: 19920101, Max: 19990101, Integer: true},
		{Name: "o_shippriority", Min: 0, Max: 1, Integer: true},
		{Name: "lineitems.l_quantity", Min: 1, Max: 50, Integer: true, Nested: true},
		{Name: "lineitems.l_extendedprice", Min: 900, Max: 100900, Nested: true},
		{Name: "lineitems.l_discount", Min: 0, Max: 0.10, Nested: true},
		{Name: "lineitems.l_tax", Min: 0, Max: 0.08, Nested: true},
		{Name: "lineitems.l_shipdate", Min: 19920101, Max: 19990301, Integer: true, Nested: true},
	}
}

// nonNested filters the attribute pool.
func nonNested(attrs []Attr) []Attr {
	var out []Attr
	for _, a := range attrs {
		if !a.Nested {
			out = append(out, a)
		}
	}
	return out
}

// randRange draws a predicate interval with random position and width
// ("random selectivity" in the paper's phrasing).
func randRange(r *rand.Rand, a Attr) (string, string) {
	span := a.Max - a.Min
	lo := a.Min + r.Float64()*span*0.9
	width := r.Float64() * (a.Max - lo)
	hi := lo + width
	if a.Integer {
		return fmt.Sprintf("%d", int64(lo)), fmt.Sprintf("%d", int64(hi))
	}
	return fmt.Sprintf("%.4f", lo), fmt.Sprintf("%.4f", hi)
}

// spa builds one select-project-aggregate query over a table from an
// attribute pool: 1–3 aggregates, 1–2 range predicates.
func spa(r *rand.Rand, table string, pool []Attr) string {
	nAgg := 1 + r.Intn(3)
	var aggs []string
	seen := map[string]bool{}
	for i := 0; i < nAgg; i++ {
		a := pool[r.Intn(len(pool))]
		if seen[a.Name] {
			continue
		}
		seen[a.Name] = true
		fn := []string{"SUM", "AVG", "MIN", "MAX"}[r.Intn(4)]
		aggs = append(aggs, fmt.Sprintf("%s(%s)", fn, a.Name))
	}
	if len(aggs) == 0 {
		aggs = []string{"COUNT(*)"}
	}
	nPred := 1 + r.Intn(2)
	var preds []string
	predSeen := map[string]bool{}
	for i := 0; i < nPred; i++ {
		a := pool[r.Intn(len(pool))]
		if predSeen[a.Name] {
			continue
		}
		predSeen[a.Name] = true
		lo, hi := randRange(r, a)
		preds = append(preds, fmt.Sprintf("%s BETWEEN %s AND %s", a.Name, lo, hi))
	}
	return fmt.Sprintf("SELECT %s FROM %s WHERE %s",
		strings.Join(aggs, ", "), table, strings.Join(preds, " AND "))
}

// Pattern selects which queries may access nested attributes — the phased
// workloads of Figure 1 and Figure 9.
type Pattern func(qi, n int) bool

// PhaseSwitch: the first half draws from all attributes, the second half
// from non-nested attributes only (Fig. 1 / 9a).
func PhaseSwitch(qi, n int) bool { return qi < n/2 }

// Alternate100: the pool alternates every 100 queries (Fig. 9b): queries
// 1–100, 201–300, 401–500 use all attributes.
func Alternate100(qi, n int) bool { return (qi/100)%2 == 0 }

// Random50: each query flips a fair coin (Fig. 9c).
func Random50(qi, n int) bool { return qi%2 == 0 }

// PhasedSPA generates n SPA queries over a nested table: queries for which
// pattern returns true draw attributes from the full pool, the others from
// non-nested attributes only.
func PhasedSPA(table string, attrs []Attr, n int, pattern Pattern, seed int64) []string {
	r := rand.New(rand.NewSource(seed))
	all := attrs
	flat := nonNested(attrs)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		pool := flat
		if pattern(i, n) {
			pool = all
		}
		out[i] = spa(r, table, pool)
	}
	return out
}
