package workload

import (
	"strings"
	"testing"

	"recache/internal/sqlparse"
)

func mustParseAll(t *testing.T, queries []string) {
	t.Helper()
	for _, q := range queries {
		if _, err := sqlparse.Parse(q); err != nil {
			t.Fatalf("generated query does not parse: %q: %v", q, err)
		}
	}
}

func TestPhasedSPAPatterns(t *testing.T) {
	attrs := OrderLineitemsAttrs()
	qs := PhasedSPA("orderlineitems", attrs, 100, PhaseSwitch, 1)
	if len(qs) != 100 {
		t.Fatalf("queries = %d", len(qs))
	}
	mustParseAll(t, qs)
	// Second half must not reference nested attributes.
	for i := 50; i < 100; i++ {
		if strings.Contains(qs[i], "lineitems.") {
			t.Errorf("query %d in non-nested phase references nested attr: %s", i, qs[i])
		}
	}
	// First half should reference nested attributes at least sometimes.
	nested := 0
	for i := 0; i < 50; i++ {
		if strings.Contains(qs[i], "lineitems.") {
			nested++
		}
	}
	if nested == 0 {
		t.Error("no nested references in the all-attributes phase")
	}
}

func TestAlternate100(t *testing.T) {
	if !Alternate100(0, 600) || Alternate100(150, 600) || !Alternate100(250, 600) {
		t.Error("Alternate100 pattern wrong")
	}
}

func TestPhasedSPADeterministic(t *testing.T) {
	attrs := OrderLineitemsAttrs()
	a := PhasedSPA("x", attrs, 20, Random50, 5)
	b := PhasedSPA("x", attrs, 20, Random50, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d", i)
		}
	}
	c := PhasedSPA("x", attrs, 20, Random50, 6)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Error("different seeds gave identical workload")
	}
}

func TestSPJConnectivityAndParse(t *testing.T) {
	qs := SPJ(DefaultTPCHTables(), 200, 3)
	mustParseAll(t, qs)
	joins := 0
	for _, q := range qs {
		ast, err := sqlparse.Parse(q)
		if err != nil {
			t.Fatal(err)
		}
		// Each query's FROM clause must connect all tables: tables count
		// equals joins count + 1.
		if len(ast.Tables) != len(ast.Joins)+1 {
			t.Errorf("disconnected FROM clause: %s", q)
		}
		if len(ast.Joins) > 0 {
			joins++
		}
		// One predicate per included table.
		if ast.Where == nil {
			t.Errorf("no predicate: %s", q)
		}
	}
	if joins == 0 {
		t.Error("no multi-table queries generated")
	}
}

func TestSPJBridging(t *testing.T) {
	// Force many iterations; every customer+part combination must include
	// the bridge tables.
	qs := SPJ(DefaultTPCHTables(), 500, 11)
	for _, q := range qs {
		hasCustomer := strings.Contains(q, "customer")
		hasPart := strings.Contains(q, " part") || strings.Contains(q, "part ") ||
			strings.Contains(q, "JOIN part ON")
		hasOrders := strings.Contains(q, "orders")
		hasLineitem := strings.Contains(q, "lineitem")
		if hasCustomer && hasPart && (!hasOrders || !hasLineitem) {
			t.Errorf("customer⋈part without bridges: %s", q)
		}
	}
}

func TestSymantecWorkload(t *testing.T) {
	qs := Symantec(SymantecOptions{
		JSONTable: "sjson", CSVTable: "scsv",
		N: 300, NestedPct: 50, JSONPct: 80, JoinPct: 10, Seed: 2,
	})
	mustParseAll(t, qs)
	var nJoin, nJSON, nCSV, nNested int
	for _, q := range qs {
		switch {
		case strings.Contains(q, "JOIN"):
			nJoin++
		case strings.Contains(q, "FROM sjson"):
			nJSON++
		default:
			nCSV++
		}
		if strings.Contains(q, "urls.") {
			nNested++
		}
	}
	if nJoin == 0 || nJSON == 0 || nCSV == 0 || nNested == 0 {
		t.Errorf("mix missing categories: join=%d json=%d csv=%d nested=%d",
			nJoin, nJSON, nCSV, nNested)
	}
	if nJSON < nCSV {
		t.Errorf("JSONPct=80 but json=%d < csv=%d", nJSON, nCSV)
	}
}

func TestSymantecNestedLastHalfOnly(t *testing.T) {
	qs := Symantec(SymantecOptions{
		JSONTable: "sjson", CSVTable: "scsv",
		N: 200, NestedPct: 100, JSONPct: 100, NestedLastHalfOnly: true, Seed: 4,
	})
	for i := 0; i < 100; i++ {
		if strings.Contains(qs[i], "urls.") {
			t.Errorf("query %d nested before half: %s", i, qs[i])
		}
	}
	nested := 0
	for i := 100; i < 200; i++ {
		if strings.Contains(qs[i], "urls.") {
			nested++
		}
	}
	if nested == 0 {
		t.Error("no nested queries in last half")
	}
}

func TestYelpWorkload(t *testing.T) {
	qs := Yelp(YelpTables{Business: "b", User: "u", Review: "r"}, 300, 60, 7)
	mustParseAll(t, qs)
	var nNested int
	for _, q := range qs {
		if strings.Contains(q, "COUNT(categories)") || strings.Contains(q, "COUNT(friends)") {
			nNested++
		}
	}
	if nNested == 0 {
		t.Error("no nested (list-aggregating) queries")
	}
	// 0% nested: none.
	qs0 := Yelp(YelpTables{Business: "b", User: "u", Review: "r"}, 100, 0, 7)
	for _, q := range qs0 {
		if strings.Contains(q, "COUNT(categories)") || strings.Contains(q, "COUNT(friends)") {
			t.Errorf("nested query at 0%%: %s", q)
		}
	}
}
