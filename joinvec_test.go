package recache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// joinTestEngine registers the join-corpus tables: two flat tables crafted
// for key edge cases (duplicate keys, +0/-0, NaN, NULLs of every kind) and
// the small standard table for three-way joins.
func joinTestEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	left := "1|1.5|a|10\n" +
		"2|0.0|b|20\n" +
		"2|-0.0|c|30\n" +
		"3|NaN|a|40\n" +
		"|2.5|d|50\n" +
		"5||e|60\n" +
		"7|7.0|b|70\n"
	if err := eng.RegisterCSV("tjl", writeTemp(t, "tjl.csv", left),
		"lk int, lf float, ls string, lv int", '|'); err != nil {
		t.Fatal(err)
	}
	right := "1|-0.0|a|100\n" +
		"2|0.0|b|200\n" +
		"2|2.5|c|300\n" +
		"|NaN|d|400\n" +
		"4|1.5||500\n" +
		"7|-7.0|e|600\n" +
		"2|1.5|a|700\n"
	if err := eng.RegisterCSV("tjr", writeTemp(t, "tjr.csv", right),
		"rk int, rf float, rs string, rv int", '|'); err != nil {
		t.Fatal(err)
	}
	small := "1|10|1.5|aa\n2|20|2.5|bb\n3|30|3.5|cc\n4|40|4.5|dd\n5|50|5.5|ee\n"
	if err := eng.RegisterCSV("t3", writeTemp(t, "t3.csv", small),
		"id int, qty int, price float, name string", '|'); err != nil {
		t.Fatal(err)
	}
	return eng
}

// joinCorpus is the engine-level differential corpus: every join shape the
// executor supports, across key kinds (including Int/Float cross-type),
// NULL keys dropped on both sides, ±0 and NaN float keys, empty build
// sides, duplicate-key fanout, and a three-way join whose outer build side
// is itself a join.
func joinCorpus() []string {
	return []string{
		"SELECT COUNT(*), SUM(lv), SUM(rv) FROM tjl JOIN tjr ON lk = rk",
		"SELECT COUNT(*), SUM(rv) FROM tjl JOIN tjr ON lf = rf",
		"SELECT COUNT(*), SUM(lv) FROM tjl JOIN tjr ON lk = rf",
		"SELECT COUNT(*), SUM(rv) FROM tjl JOIN tjr ON lf = rk",
		"SELECT COUNT(*), SUM(lv), SUM(rv) FROM tjl JOIN tjr ON ls = rs",
		"SELECT COUNT(*), SUM(rv) FROM tjl JOIN tjr ON lk = rk WHERE lv >= 20 AND rv < 600",
		"SELECT COUNT(*), SUM(rv) FROM tjl JOIN tjr ON lk = rk WHERE lv > 1000",
		"SELECT lv, rv FROM tjl JOIN tjr ON lk = rk",
		"SELECT ls, COUNT(*) AS n, SUM(rv) FROM tjl JOIN tjr ON lk = rk GROUP BY ls",
		"SELECT COUNT(*), SUM(price) FROM t3 JOIN tjl ON id = lk JOIN tjr ON lk = rk",
	}
}

// TestVectorizedJoinEngineParity runs the corpus through a vectorized
// engine, a joins-disabled engine, a fully row engine, and a no-cache
// baseline, across layout configurations: all four must agree on every
// query, on the miss and on the hits.
func TestVectorizedJoinEngineParity(t *testing.T) {
	configs := []Config{
		{Admission: "eager"},
		{Admission: "eager", Layout: "columnar"},
		{Admission: "eager", Layout: "parquet"},
		{Admission: "eager", Layout: "row"},
		{Admission: "lazy"},
	}
	base := joinTestEngine(t, Config{Admission: "off"})
	var want [][][]any
	for _, q := range joinCorpus() {
		res, err := base.Query(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		want = append(want, res.Rows)
	}
	for _, cfg := range configs {
		joinOffCfg, rowCfg := cfg, cfg
		joinOffCfg.DisableVectorizedJoins = true
		rowCfg.DisableVectorized = true
		engVec := joinTestEngine(t, cfg)
		engJoinOff := joinTestEngine(t, joinOffCfg)
		engRow := joinTestEngine(t, rowCfg)
		for pass := 0; pass < 3; pass++ {
			for qi, q := range joinCorpus() {
				for _, e := range []struct {
					name string
					eng  *Engine
				}{{"vec", engVec}, {"join-off", engJoinOff}, {"row", engRow}} {
					res, err := e.eng.Query(q)
					if err != nil {
						t.Fatalf("cfg %+v pass %d %q (%s): %v", cfg, pass, q, e.name, err)
					}
					if !reflect.DeepEqual(res.Rows, want[qi]) {
						t.Errorf("cfg %+v pass %d %q (%s): %v, want %v",
							cfg, pass, q, e.name, res.Rows, want[qi])
					}
				}
			}
		}
		if got := engJoinOff.CacheStats().VectorizedJoins; got != 0 {
			t.Errorf("cfg %+v: DisableVectorizedJoins engine ran %d vectorized joins", cfg, got)
		}
		if got := engRow.CacheStats().VectorizedJoins; got != 0 {
			t.Errorf("cfg %+v: DisableVectorized engine ran %d vectorized joins", cfg, got)
		}
		if cfg.Layout == "columnar" {
			if got := engVec.CacheStats().VectorizedJoins; got == 0 {
				t.Errorf("cfg %+v: vectorized engine ran zero vectorized joins", cfg)
			}
		}
	}
}

// TestVectorizedJoinConcurrentHits replays warmed join queries from many
// goroutines against one shared engine (run under -race in CI): every
// result must match the single-threaded answers, and the batch join must
// actually have served hits.
func TestVectorizedJoinConcurrentHits(t *testing.T) {
	eng := joinTestEngine(t, Config{Admission: "eager", Layout: "columnar"})
	queries := joinCorpus()
	want := make(map[string][][]any, len(queries))
	for _, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res.Rows
	}
	const workers, iters = 8, 25
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := eng.Query(q)
				if err != nil {
					errs <- fmt.Errorf("%q: %w", q, err)
					return
				}
				if !reflect.DeepEqual(res.Rows, want[q]) {
					errs <- fmt.Errorf("%q: %v, want %v", q, res.Rows, want[q])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := eng.CacheStats()
	if st.VectorizedJoins == 0 {
		t.Error("concurrent join replay used zero vectorized joins")
	}
	if st.JoinProbeBatches < st.VectorizedJoins {
		t.Errorf("probe batches %d < joins %d", st.JoinProbeBatches, st.VectorizedJoins)
	}
}

// TestExplainShowsJoinFlavor: EXPLAIN annotates Join nodes with the flavor
// the execution would take — "join: vectorized, N probe batches" on warmed
// columnar entries, flipping to "join: row" when vectorized joins are
// disabled and for lazy-entry inputs.
func TestExplainShowsJoinFlavor(t *testing.T) {
	q := "SELECT COUNT(*), SUM(rv) FROM tjl JOIN tjr ON lk = rk"

	eng := joinTestEngine(t, Config{Admission: "eager", Layout: "columnar"})
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "join: vectorized, 1 probe batches") {
		t.Errorf("explain should mark the join vectorized with a probe batch count:\n%s", out)
	}

	off := joinTestEngine(t, Config{Admission: "eager", Layout: "columnar", DisableVectorizedJoins: true})
	if _, err := off.Query(q); err != nil {
		t.Fatal(err)
	}
	out, err = off.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "join: row") {
		t.Errorf("explain with vectorized joins disabled should mark the join row:\n%s", out)
	}
	if strings.Contains(out, "join: vectorized") {
		t.Errorf("explain with vectorized joins disabled still claims a vectorized join:\n%s", out)
	}

	lazy := joinTestEngine(t, Config{Admission: "lazy"})
	if _, err := lazy.Query(q); err != nil {
		t.Fatal(err)
	}
	out, err = lazy.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "join: row") {
		t.Errorf("explain over lazy entries should mark the join row:\n%s", out)
	}
}

// --- the acceptance benchmark ---

// benchJoinEngine builds an engine over two generated CSVs big enough that
// the join flavor dominates, warms the cache, and returns the hot query:
// a selective build side joined against a wide probe side, aggregate on
// top — the shape the batch pipeline must carry end to end.
func benchJoinEngine(b *testing.B, disableVecJoins bool) (*Engine, string) {
	b.Helper()
	const rows = 50000
	dir := b.TempDir()
	var lb, rb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&lb, "%d|%d|%d.%02d\n", i, i%100, i%500, i%100)
		fmt.Fprintf(&rb, "%d|%d|%d.%02d\n", i, i%100, i%300, i%100)
	}
	lp := filepath.Join(dir, "bigl.csv")
	rp := filepath.Join(dir, "bigr.csv")
	if err := os.WriteFile(lp, []byte(lb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	if err := os.WriteFile(rp, []byte(rb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	eng, err := Open(Config{Admission: "eager", Layout: "columnar",
		DisableVectorizedJoins: disableVecJoins})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterCSV("bigl", lp, "lid int, lqty int, lprice float", '|'); err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterCSV("bigr", rp, "rid int, rqty int, rprice float", '|'); err != nil {
		b.Fatal(err)
	}
	// Build side ~10% of rows, probe side ~80%: the probe loop and the
	// joined-output consumption dominate, as in a warmed join workload.
	q := "SELECT SUM(lprice), SUM(rprice), COUNT(*) FROM bigl JOIN bigr ON lid = rid " +
		"WHERE lqty BETWEEN 10 AND 19 AND rqty < 80"
	if _, err := eng.Query(q); err != nil { // warm: build both entries
		b.Fatal(err)
	}
	return eng, q
}

// BenchmarkVectorizedJoin compares the two join flavors over hot columnar
// cache entries (join + aggregate). The acceptance bar is the batch-native
// join ≥ 3× the row-join throughput.
func BenchmarkVectorizedJoin(b *testing.B) {
	b.Run("vectorized", func(b *testing.B) {
		eng, q := benchJoinEngine(b, false)
		out, err := eng.Explain(q)
		if err != nil || !strings.Contains(out, "join: vectorized") {
			b.Fatalf("plan is not join-vectorized (err=%v):\n%s", err, out)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := eng.CacheStats().VectorizedJoins; got < int64(b.N) {
			b.Fatalf("vectorized joins = %d, want >= %d", got, b.N)
		}
	})
	b.Run("row", func(b *testing.B) {
		eng, q := benchJoinEngine(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if got := eng.CacheStats().VectorizedJoins; got != 0 {
			b.Fatalf("row path ran %d vectorized joins", got)
		}
	})
}
