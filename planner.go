package recache

import (
	"fmt"
	"strings"

	"recache/internal/expr"
	"recache/internal/plan"
	"recache/internal/sqlparse"
	"recache/internal/value"
)

// planned carries everything the executor and cache rewrite need.
type planned struct {
	root        plan.Node
	neededPaths map[string][]value.Path // per dataset: raw-scan projections
	neededNames map[string][]string     // per dataset: dotted leaf names
}

// buildPlan turns a parsed query into a logical plan:
//
//	Scan → Select(non-nested conjuncts)            ← the cacheable operator
//	     → [Unnest → Select(nested conjuncts)]     ← only if nested refs
//	     → joins (left-deep, in FROM order)
//	     → post-join Select (cross-table residue)
//	     → Aggregate | Project
func (e *Engine) buildPlan(q *sqlparse.Query) (*planned, error) {
	type tbl struct {
		ds     *plan.Dataset
		base   []expr.Expr // non-nested single-table conjuncts
		nested []expr.Expr // conjuncts touching repeated columns
		unnest bool
		refs   map[string]bool // referenced dotted columns
	}
	tables := make([]*tbl, len(q.Tables))
	byName := map[string]*tbl{}
	for i, name := range q.Tables {
		ds, ok := e.datasets[name]
		if !ok {
			return nil, fmt.Errorf("recache: unknown table %q", name)
		}
		tables[i] = &tbl{ds: ds, refs: map[string]bool{}}
		byName[name] = tables[i]
	}

	// resolve attributes a dotted column to exactly one table and reports
	// whether it crosses a repeated field.
	resolve := func(col string) (*tbl, bool, error) {
		var owner *tbl
		var repeated bool
		for _, t := range tables {
			if _, rep, err := value.ParsePath(col).Resolve(t.ds.Schema()); err == nil {
				if owner != nil {
					return nil, false, fmt.Errorf("recache: ambiguous column %q", col)
				}
				owner, repeated = t, rep
			}
		}
		if owner == nil {
			return nil, false, fmt.Errorf("recache: unknown column %q", col)
		}
		return owner, repeated, nil
	}

	note := func(col string) (*tbl, bool, error) {
		t, rep, err := resolve(col)
		if err != nil {
			return nil, false, err
		}
		t.refs[col] = true
		if rep {
			t.unnest = true
		}
		return t, rep, nil
	}

	// Join conditions: explicit JOIN ... ON plus implicit col=col conjuncts.
	type joinCond struct {
		a, b       *tbl
		aCol, bCol string
	}
	var joins []joinCond
	for _, jc := range q.Joins {
		ta, _, err := note(jc.LeftCol)
		if err != nil {
			return nil, err
		}
		tb, _, err := note(jc.RightCol)
		if err != nil {
			return nil, err
		}
		if ta == tb {
			return nil, fmt.Errorf("recache: join keys %q, %q resolve to the same table", jc.LeftCol, jc.RightCol)
		}
		joins = append(joins, joinCond{a: ta, b: tb, aCol: jc.LeftCol, bCol: jc.RightCol})
	}

	// Distribute WHERE conjuncts.
	var crossResidue []expr.Expr
	for _, c := range expr.Conjuncts(q.Where) {
		cols := expr.Columns(c)
		if len(cols) == 0 {
			crossResidue = append(crossResidue, c)
			continue
		}
		// Implicit equi-join: col = col across tables.
		if b, ok := c.(*expr.Bin); ok && b.Op == expr.OpEq {
			lc, lok := b.L.(*expr.Col)
			rc, rok := b.R.(*expr.Col)
			if lok && rok {
				ta, _, err := note(lc.Path.String())
				if err != nil {
					return nil, err
				}
				tb, _, err := note(rc.Path.String())
				if err != nil {
					return nil, err
				}
				if ta != tb {
					joins = append(joins, joinCond{a: ta, b: tb, aCol: lc.Path.String(), bCol: rc.Path.String()})
					continue
				}
			}
		}
		var owner *tbl
		sameTable, anyRepeated := true, false
		for _, col := range cols {
			t, rep, err := note(col.String())
			if err != nil {
				return nil, err
			}
			anyRepeated = anyRepeated || rep
			if owner == nil {
				owner = t
			} else if owner != t {
				sameTable = false
			}
		}
		switch {
		case !sameTable:
			crossResidue = append(crossResidue, c)
		case anyRepeated:
			owner.nested = append(owner.nested, c)
		default:
			owner.base = append(owner.base, c)
		}
	}

	// Select items and group-by references.
	for _, it := range q.Select {
		if it.Star {
			continue
		}
		if _, _, err := note(it.Col); err != nil {
			return nil, err
		}
	}
	for _, g := range q.GroupBy {
		if _, _, err := note(g); err != nil {
			return nil, err
		}
	}

	// Per-table access chains.
	chains := make(map[*tbl]plan.Node, len(tables))
	for _, t := range tables {
		var n plan.Node = &plan.Select{Pred: expr.And(t.base...), Child: &plan.Scan{DS: t.ds}}
		if t.unnest {
			u, err := plan.NewUnnest(n)
			if err != nil {
				return nil, err
			}
			n = u
			if len(t.nested) > 0 {
				n = &plan.Select{Pred: expr.And(t.nested...), Child: n}
			}
		} else if len(t.nested) > 0 {
			return nil, fmt.Errorf("recache: internal: nested conjuncts without unnest")
		}
		chains[t] = n
	}

	// Left-deep join tree in FROM order, connected by available conditions.
	root := chains[tables[0]]
	joined := map[*tbl]bool{tables[0]: true}
	remaining := append([]joinCond(nil), joins...)
	for count := 1; count < len(tables); count++ {
		found := -1
		for i, jc := range remaining {
			if joined[jc.a] != joined[jc.b] { // connects the joined set to a new table
				found = i
				break
			}
		}
		if found < 0 {
			return nil, fmt.Errorf("recache: no join condition connects all tables (cartesian products unsupported)")
		}
		jc := remaining[found]
		remaining = append(remaining[:found], remaining[found+1:]...)
		inner, innerCol, outerCol := jc.b, jc.bCol, jc.aCol
		if joined[jc.b] {
			inner, innerCol, outerCol = jc.a, jc.aCol, jc.bCol
		}
		j, err := plan.NewJoin(root, chains[inner], expr.C(outerCol), expr.C(innerCol))
		if err != nil {
			return nil, err
		}
		root = j
		joined[inner] = true
	}
	// Leftover join conditions between already-joined tables become filters.
	for _, jc := range remaining {
		crossResidue = append(crossResidue, expr.Cmp(expr.OpEq, expr.C(jc.aCol), expr.C(jc.bCol)))
	}
	if pred := expr.And(crossResidue...); pred != nil {
		root = &plan.Select{Pred: pred, Child: root}
	}

	// Aggregation / projection head.
	hasAgg := false
	for _, it := range q.Select {
		if it.Agg != "" {
			hasAgg = true
		}
	}
	switch {
	case hasAgg || len(q.GroupBy) > 0:
		groupSet := map[string]bool{}
		for _, g := range q.GroupBy {
			groupSet[g] = true
		}
		var aggs []plan.AggSpec
		for _, it := range q.Select {
			if it.Agg == "" {
				if !groupSet[it.Col] {
					return nil, fmt.Errorf("recache: column %q must appear in GROUP BY", it.Col)
				}
				continue
			}
			spec := plan.AggSpec{Func: aggFunc(it.Agg), Name: it.As}
			if !it.Star {
				spec.Arg = expr.C(it.Col)
			}
			if spec.Name == "" {
				if it.Star {
					spec.Name = "count"
				} else {
					spec.Name = it.Agg + "_" + strings.ReplaceAll(it.Col, ".", "_")
				}
			}
			aggs = append(aggs, spec)
		}
		var groupBy []expr.Expr
		var groupNames []string
		for _, g := range q.GroupBy {
			groupBy = append(groupBy, expr.C(g))
			groupNames = append(groupNames, g)
		}
		a, err := plan.NewAggregate(aggs, groupBy, groupNames, root)
		if err != nil {
			return nil, err
		}
		root = a
	default:
		var exprs []expr.Expr
		var names []string
		for _, it := range q.Select {
			exprs = append(exprs, expr.C(it.Col))
			name := it.As
			if name == "" {
				name = it.Col
			}
			names = append(names, name)
		}
		p, err := plan.NewProject(exprs, names, root)
		if err != nil {
			return nil, err
		}
		root = p
	}

	// Needed-column maps. Every referenced column of a table becomes a raw
	// scan projection and a cache-scan projection.
	neededPaths := map[string][]value.Path{}
	neededNames := map[string][]string{}
	for _, t := range tables {
		names := make([]string, 0, len(t.refs))
		for col := range t.refs {
			names = append(names, col)
		}
		// Deterministic order (map iteration is random).
		sortStrings(names)
		paths := make([]value.Path, len(names))
		for i, n := range names {
			paths[i] = value.ParsePath(n)
		}
		neededPaths[t.ds.Name] = paths
		neededNames[t.ds.Name] = leafNames(t.ds.Schema(), names)
	}
	return &planned{root: root, neededPaths: neededPaths, neededNames: neededNames}, nil
}

func aggFunc(name string) plan.AggFunc {
	switch name {
	case "count":
		return plan.AggCount
	case "sum":
		return plan.AggSum
	case "avg":
		return plan.AggAvg
	case "min":
		return plan.AggMin
	case "max":
		return plan.AggMax
	}
	return plan.AggCount
}

// leafNames expands referenced columns to leaf-column names: a reference to
// a non-leaf field (e.g. a whole sub-record) covers all leaves below it.
func leafNames(schema *value.Type, cols []string) []string {
	leaves, err := value.LeafColumns(schema)
	if err != nil {
		return cols
	}
	var out []string
	seen := map[string]bool{}
	for _, c := range cols {
		matched := false
		for _, l := range leaves {
			n := l.Name()
			if n == c || strings.HasPrefix(n, c+".") {
				matched = true
				if !seen[n] {
					seen[n] = true
					out = append(out, n)
				}
			}
		}
		if !matched && !seen[c] {
			seen[c] = true
			out = append(out, c)
		}
	}
	return out
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
