package recache

// Engine-level predicate-pushdown tests: a differential suite proving that
// pushing conjuncts below parsing never changes results — across CSV and
// JSON (absent keys, nulls, quoted fields), admission modes, repeated
// passes (first scan vs positional-map scan vs cache hit), and concurrent
// heterogeneous bursts under shared scans (run with -race) — plus counter
// accounting and EXPLAIN annotations.

import (
	"fmt"
	"reflect"

	"strings"
	"sync"
	"testing"
)

// pushdownEngine registers edge-case CSV and JSON tables: empty CSV fields
// (NULLs) in every column kind, quote characters inside CSV strings, JSON
// records with absent keys and explicit nulls.
func pushdownEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	csv := "1|10|1.5|aa\n" +
		"2|20||\"bb\"\n" + // null price, quoted string content
		"3||3.5|cc\n" + // null qty
		"4|40|4.5|\n" + // null name
		"5|50|5.5|ee\n" +
		"6|60|-1|aa\n"
	err = eng.RegisterCSV("t", writeTemp(t, "t.csv", csv),
		"id int, qty int, price float, name string", '|')
	if err != nil {
		t.Fatal(err)
	}
	njson := `{"okey":1,"total":100.5,"tag":"x"}
{"okey":2,"tag":"y"}
{"okey":3,"total":null,"tag":"z"}
{"total":55.5,"tag":"x"}
{"okey":5,"total":-3}
`
	err = eng.RegisterJSON("j", writeTemp(t, "j.json", njson),
		"okey int, total float, tag string")
	if err != nil {
		t.Fatal(err)
	}
	return eng
}

var pushdownQueries = []string{
	"SELECT id, qty, name FROM t WHERE qty BETWEEN 20 AND 50",
	"SELECT SUM(price), COUNT(*) FROM t WHERE id >= 2 AND id <= 5",
	"SELECT id FROM t WHERE name = 'aa'",
	"SELECT id FROM t WHERE name = '\"bb\"'",
	"SELECT COUNT(*) FROM t WHERE price > 0 AND name < 'dd'",
	"SELECT id FROM t WHERE qty > 15 AND id + qty > 25", // residual conjunct
	"SELECT okey, tag FROM j WHERE okey >= 2",
	"SELECT SUM(total) FROM j WHERE total > 0",
	"SELECT okey FROM j WHERE tag = 'x' AND okey < 4",
	"SELECT COUNT(*) FROM j WHERE total <= 100.5",
}

// TestPushdownDifferential: every query must return identical rows with
// pushdown on and off, across admission modes and repeated passes (pass 0
// exercises the first scan, pass 1 the positional-map scan or cache hit,
// pass 2 steady state).
func TestPushdownDifferential(t *testing.T) {
	for _, admission := range []string{"off", "eager", "adaptive"} {
		t.Run("admission="+admission, func(t *testing.T) {
			on := pushdownEngine(t, Config{Admission: admission})
			off := pushdownEngine(t, Config{Admission: admission, DisablePushdown: true})
			for pass := 0; pass < 3; pass++ {
				for _, q := range pushdownQueries {
					want, err := off.Query(q)
					if err != nil {
						t.Fatalf("pass %d %q (pushdown off): %v", pass, q, err)
					}
					got, err := on.Query(q)
					if err != nil {
						t.Fatalf("pass %d %q (pushdown on): %v", pass, q, err)
					}
					if !reflect.DeepEqual(got.Rows, want.Rows) {
						t.Fatalf("pass %d %q:\n got %v\nwant %v", pass, q, got.Rows, want.Rows)
					}
				}
			}
			if admission != "off" {
				// With caching on, misses happened on pass 0; the pushdown
				// engine must have pushed conjuncts below those raw scans.
				if st := on.CacheStats(); st.PushdownScans == 0 || st.PushedConjuncts == 0 {
					t.Errorf("pushdown engine never pushed: %+v", st)
				}
			}
		})
	}
}

// TestPushdownSharedScanDifferential: concurrent heterogeneous cold bursts
// under work sharing return the same results with pushdown on and off (the
// shared scan pushes only the intersection and rechecks remainders).
func TestPushdownSharedScanDifferential(t *testing.T) {
	queries := []string{
		"SELECT SUM(qty) FROM t WHERE id BETWEEN 2 AND 5",
		"SELECT SUM(qty) FROM t WHERE id >= 2",
		"SELECT COUNT(*) FROM t WHERE name = 'aa'",
		"SELECT SUM(price) FROM t WHERE id >= 2 AND id + qty > 20", // residual
	}
	run := func(cfg Config) map[string][][]any {
		eng := pushdownEngine(t, cfg)
		out := make(map[string][][]any)
		var mu sync.Mutex
		for round := 0; round < 3; round++ {
			var wg sync.WaitGroup
			start := make(chan struct{})
			for _, q := range queries {
				wg.Add(1)
				go func(q string) {
					defer wg.Done()
					<-start
					res, err := eng.Query(q)
					if err != nil {
						t.Error(err)
						return
					}
					mu.Lock()
					out[q] = res.Rows
					mu.Unlock()
				}(q)
			}
			close(start)
			wg.Wait()
		}
		return out
	}
	got := run(Config{Admission: "eager"})
	want := run(Config{Admission: "eager", DisablePushdown: true})
	for _, q := range queries {
		if !reflect.DeepEqual(got[q], want[q]) {
			t.Errorf("%q:\n got %v\nwant %v", q, got[q], want[q])
		}
	}
}

// TestPushdownBurstSkipCounters: a burst of identical selective cold
// queries must report early-skip activity consistently — every pushdown
// scan of the 6-record file skips exactly the 4 non-matching records, so
// manager and provider counters are exact multiples (run with -race).
func TestPushdownBurstSkipCounters(t *testing.T) {
	eng := pushdownEngine(t, Config{Admission: "off"})
	const workers = 8
	const perScanSkip = 4 // ids 1,2 match BETWEEN 1 AND 2; 4 records fail
	var wg sync.WaitGroup
	start := make(chan struct{})
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, err := eng.Query("SELECT SUM(qty) FROM t WHERE id BETWEEN 1 AND 2"); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()
	st := eng.CacheStats()
	if st.PushdownScans == 0 {
		t.Fatalf("no pushdown scans recorded: %+v", st)
	}
	if st.PushedConjuncts != 2*st.PushdownScans {
		t.Errorf("PushedConjuncts = %d, want 2 per scan (%d scans)", st.PushedConjuncts, st.PushdownScans)
	}
	if st.RecordsSkippedEarly != perScanSkip*st.PushdownScans {
		t.Errorf("RecordsSkippedEarly = %d, want %d per scan (%d scans)",
			st.RecordsSkippedEarly, perScanSkip, st.PushdownScans)
	}
	scans, skipped := eng.RawPushdownStats("t")
	if scans != st.PushdownScans || skipped != st.RecordsSkippedEarly {
		t.Errorf("provider stats (%d, %d) disagree with manager (%d, %d)",
			scans, skipped, st.PushdownScans, st.RecordsSkippedEarly)
	}
}

// TestPushdownStatsSingleQuery: one cold selective query pushes its two
// conjuncts below one raw scan and skips exactly the non-matching records.
func TestPushdownStatsSingleQuery(t *testing.T) {
	eng := pushdownEngine(t, Config{Admission: "off"})
	if _, err := eng.Query("SELECT COUNT(*) FROM j WHERE okey BETWEEN 1 AND 2"); err != nil {
		t.Fatal(err)
	}
	st := eng.CacheStats()
	if st.PushdownScans != 1 || st.PushedConjuncts != 2 {
		t.Fatalf("stats = %+v, want 1 pushdown scan with 2 conjuncts", st)
	}
	// Records 3 (okey=3), 4 (absent okey) and 5 (okey=5) are skipped early.
	if st.RecordsSkippedEarly != 3 {
		t.Fatalf("RecordsSkippedEarly = %d, want 3", st.RecordsSkippedEarly)
	}
}

// TestExplainPushdownAnnotation: EXPLAIN shows the predicate split on
// Select-over-Scan nodes, and "pushdown: off" under the ablation.
func TestExplainPushdownAnnotation(t *testing.T) {
	eng := pushdownEngine(t, Config{Admission: "off"})
	out, err := eng.Explain("SELECT id FROM t WHERE qty >= 20 AND id + qty > 25")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pushdown: [") || !strings.Contains(out, "residual:") {
		t.Errorf("EXPLAIN missing pushdown/residual annotation:\n%s", out)
	}
	offEng := pushdownEngine(t, Config{Admission: "off", DisablePushdown: true})
	out, err = offEng.Explain("SELECT id FROM t WHERE qty >= 20")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "pushdown: off") {
		t.Errorf("EXPLAIN missing 'pushdown: off' under ablation:\n%s", out)
	}
}

// TestPushdownSubsumptionParity: cached-entry contents built under
// pushdown must serve later subsumed queries identically to the ablation —
// the materializer sees exactly the satisfying tuples either way.
func TestPushdownSubsumptionParity(t *testing.T) {
	results := map[bool][]string{}
	for _, disabled := range []bool{false, true} {
		eng := pushdownEngine(t, Config{Admission: "eager", DisablePushdown: disabled})
		var out []string
		for _, q := range []string{
			"SELECT SUM(qty), COUNT(*) FROM t WHERE id BETWEEN 1 AND 5", // builds a wide entry
			"SELECT SUM(qty), COUNT(*) FROM t WHERE id BETWEEN 2 AND 4", // subsumed hit
			"SELECT SUM(qty), COUNT(*) FROM t WHERE id BETWEEN 3 AND 3", // subsumed hit
		} {
			res, err := eng.Query(q)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, fmt.Sprint(res.Rows))
		}
		st := eng.CacheStats()
		if st.SubsumedHits < 2 {
			t.Fatalf("disabled=%v: subsumed hits = %d, want >= 2", disabled, st.SubsumedHits)
		}
		results[disabled] = out
	}
	if !reflect.DeepEqual(results[false], results[true]) {
		t.Errorf("subsumption results differ:\n on %v\noff %v", results[false], results[true])
	}
}
