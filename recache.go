// Package recache is a reactive cache-accelerated analytics engine for raw
// heterogeneous data, reproducing the system of "ReCache: Reactive Caching
// for Fast Analytics over Heterogeneous Data" (Azim, Karpathiotakis,
// Ailamaki; PVLDB 11(3), 2017).
//
// An Engine runs read-only SQL analytics directly over CSV and
// newline-delimited JSON files. As queries execute, the engine caches the
// outputs of low-level selection operators in memory and reuses them for
// later queries that match exactly or are subsumed by a cached range
// predicate. The cache is reactive along three axes:
//
//   - Layout: nested data is cached in a Parquet-style nested columnar
//     layout or a flattened relational columnar layout, whichever the
//     observed workload favors, with automatic switching driven by a cost
//     model over measured scan costs; flat data similarly chooses between
//     row and column orientation.
//   - Admission: eager (fully parsed tuples) versus lazy (satisfying-tuple
//     file offsets) caching is decided per operator by sampling the actual
//     caching overhead at the start of each scan.
//   - Eviction: a Greedy-Dual policy whose benefit metric is recomputed
//     from live cost measurements, alongside classic policies (LRU, LFU,
//     cost-based and offline oracles) for comparison.
//
// Quickstart:
//
//	eng, _ := recache.Open(recache.Config{})
//	_ = eng.RegisterCSV("lineitem", "lineitem.csv",
//	    "l_orderkey int, l_quantity int, l_extendedprice float", '|')
//	res, _ := eng.Query("SELECT SUM(l_extendedprice) FROM lineitem WHERE l_quantity < 25")
//	fmt.Println(res.Rows[0][0])
package recache

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"recache/internal/cache"
	"recache/internal/csvio"
	"recache/internal/eviction"
	"recache/internal/exec"
	"recache/internal/expr"
	"recache/internal/jsonio"
	"recache/internal/plan"
	"recache/internal/share"
	"recache/internal/sqlparse"
	"recache/internal/store"
	"recache/internal/value"
)

// ErrClosed is returned by queries submitted after Close has begun.
var ErrClosed = errors.New("recache: engine closed")

// Config configures an Engine. The zero value enables every ReCache
// mechanism with the paper's defaults: unlimited cache, Greedy-Dual
// eviction, adaptive admission (10% threshold, 1000-record samples),
// automatic layout selection, and subsumption matching.
type Config struct {
	// CacheCapacity limits the cache size in bytes (0 = unlimited).
	CacheCapacity int64
	// SpillDir enables the tiered cache: RAM-evicted columnar entries are
	// serialized into this directory and re-admitted to RAM on their next
	// hit (one spill-file read instead of a raw re-scan). Empty disables
	// spilling (evictions discard payloads, the pre-tiering behaviour).
	// The directory is created if missing; orphaned spill files in it are
	// removed on Open.
	SpillDir string
	// DiskCacheBytes limits the disk tier's total spill-file bytes
	// (0 = unlimited). Only meaningful with SpillDir set.
	DiskCacheBytes int64
	// Eviction selects the eviction policy: "recache" (default), "lru",
	// "lfu", "lru-json-over-csv", "cost-vectorwise", "cost-monetdb",
	// "offline-farthest-first", "offline-log-optimal".
	Eviction string
	// Admission selects cache admission: "adaptive" (default), "eager",
	// "lazy", or "off" (no caching).
	Admission string
	// AdmissionThreshold is the overhead fraction above which adaptive
	// admission switches to lazy caching (default 0.10).
	AdmissionThreshold float64
	// AdmissionSampleSize is the sampling window in records (default 1000).
	AdmissionSampleSize int
	// Layout selects the cache layout strategy: "auto" (default),
	// "parquet", "columnar", or "row".
	Layout string
	// DisableSubsumption turns off R-tree range-subsumption matching.
	DisableSubsumption bool
	// ShareWindow is the shared-scan batching window: how long a raw-scan
	// cycle leader waits for further concurrent misses on the same dataset
	// before running the one shared parse (default 2ms). The window is only
	// paid after concurrent demand on the dataset is observed — a lone cold
	// query on a quiet dataset scans privately with zero added latency, and
	// one arriving shortly after a burst waits the window out at most once
	// (an empty window clears the burst memory). See internal/share.
	ShareWindow time.Duration
	// DisableSharedScans turns off the shared-scan coordinator: every
	// cache-miss query scans the raw file privately (pre-work-sharing
	// behaviour; ablation).
	DisableSharedScans bool
	// DisableVectorized turns off vectorized batch execution for cache
	// hits: every cache scan decodes boxed rows one at a time
	// (pre-vectorization behaviour; ablation and benchmarking). It implies
	// DisableVectorizedJoins.
	DisableVectorized bool
	// DisableVectorizedJoins turns off the batch-native hash join while
	// cache scans stay vectorized: joins consume hits through the
	// batch→row boundary and run the boxed row join (pre-vectorized-join
	// behaviour; ablation and benchmarking).
	DisableVectorizedJoins bool
	// DisablePushdown turns off predicate pushdown into raw scans: every
	// cache-miss scan decodes all needed fields of every record and filters
	// afterwards (pre-pushdown behaviour; ablation and benchmarking).
	DisablePushdown bool
	// RemoteFlight extends single-flight materialization across a shard
	// fleet: before a cache miss admits a new (dataset, predicate) entry,
	// the hook is asked for a fleet-wide materialization lease. ok=false
	// executes the miss raw without admitting (another process is building
	// it); a non-nil release runs when the query finishes. nil disables
	// remote flight — the single-process default. Wired by cmd/recached's
	// fleet mode via internal/client.Flight.
	RemoteFlight func(dataset, predCanon string) (release func(), ok bool)
	// OnEagerAdmit observes every eager cache admission with the entry's
	// materialized store, outside the cache lock on the admitting query's
	// goroutine. Fleet mode uses it to push a replica of each new entry to
	// the key's next rendezvous shard (internal/client.Flight.ReplicateAsync);
	// the hook must hand work off and return quickly. nil disables it.
	OnEagerAdmit func(dataset, predCanon string, st store.Store)
	// FreshnessMode controls reactive invalidation when registered raw
	// files mutate under a running engine:
	//
	//   - "" / "off": files are assumed immutable (the historical default);
	//     external writes lead to stale or inconsistent results.
	//   - "check" / "check-on-access": each query revalidates the file
	//     fingerprints of the datasets it touches before planning. A
	//     rewritten (or truncated) file invalidates every dependent cache
	//     entry; an append-grown file *extends* dependent entries by
	//     scanning only the appended tail.
	//   - "watch": a background sweep revalidates every registered dataset
	//     every ~250ms, amortizing the stat cost off the query path
	//     (queries between sweeps may see the previous file state).
	//   - "invalidate": like "check", but appends also invalidate instead
	//     of extending — the full-rebuild ablation extension is measured
	//     against.
	FreshnessMode string
}

func (c Config) toCacheConfig() (cache.Config, error) {
	out := cache.Config{
		Capacity:           c.CacheCapacity,
		SpillDir:           c.SpillDir,
		DiskCacheBytes:     c.DiskCacheBytes,
		Threshold:          c.AdmissionThreshold,
		SampleSize:         c.AdmissionSampleSize,
		DisableSubsumption: c.DisableSubsumption,
		RemoteFlight:       c.RemoteFlight,
		OnEagerAdmit:       c.OnEagerAdmit,
	}
	switch c.Eviction {
	case "", "recache", "greedy-dual":
		out.Policy = eviction.NewGreedyDual()
	default:
		p := eviction.New(c.Eviction)
		if p == nil {
			return out, fmt.Errorf("recache: unknown eviction policy %q (valid: %v)", c.Eviction, eviction.Names())
		}
		out.Policy = p
	}
	switch c.Admission {
	case "", "adaptive":
		out.Admission = cache.Adaptive
	case "eager":
		out.Admission = cache.AlwaysEager
	case "lazy":
		out.Admission = cache.AlwaysLazy
	case "off", "none":
		out.Admission = cache.Off
	default:
		return out, fmt.Errorf("recache: unknown admission mode %q", c.Admission)
	}
	switch c.Layout {
	case "", "auto":
		out.Layout = cache.LayoutAuto
	case "parquet":
		out.Layout = cache.LayoutFixedParquet
	case "columnar":
		out.Layout = cache.LayoutFixedColumnar
	case "row":
		out.Layout = cache.LayoutFixedRow
	default:
		return out, fmt.Errorf("recache: unknown layout mode %q", c.Layout)
	}
	return out, nil
}

// Engine executes SQL queries over registered raw datasets with reactive
// caching. Engines are safe for concurrent use: any number of goroutines
// may call Query (and the read-only methods) simultaneously against one
// shared cache. Concurrent identical cold queries are deduplicated by
// single-flight materialization — exactly one builds the cache entry, the
// others scan raw — and eviction defers freeing an entry's store until the
// last in-flight reader of that entry finishes.
type Engine struct {
	// mu guards the dataset registry and the share pointer; query execution
	// takes no engine-wide lock (the cache manager and coordinator
	// synchronize internally).
	mu       sync.RWMutex
	datasets map[string]*plan.Dataset
	manager  *cache.Manager
	// share is the engine's shared-scan coordinator (nil when disabled):
	// concurrent cache-miss queries on one dataset batch into a single raw
	// parse instead of N. See internal/share and DESIGN.md, "Work sharing".
	share *share.Coordinator
	// noVec disables vectorized cache scans (Config.DisableVectorized).
	noVec bool
	// noVecJoins disables the batch-native hash join
	// (Config.DisableVectorizedJoins).
	noVecJoins bool
	// noPush disables predicate pushdown into raw scans
	// (Config.DisablePushdown).
	noPush bool
	// freshMode is the normalized Config.FreshnessMode ("off",
	// "check-on-access", "watch", "invalidate"); freshCheck revalidates a
	// query's datasets in prepare, freshInvalidate treats appends as
	// rewrites (the full-rebuild ablation).
	freshMode       string
	freshCheck      bool
	freshInvalidate bool
	// watchStop ends the watch-mode background sweep (nil unless
	// FreshnessMode == "watch"); watchDone waits for its exit in Close.
	watchStop chan struct{}
	watchDone sync.WaitGroup
	// closed (guarded by mu) rejects queries submitted after Close begins;
	// inflight counts queries admitted before it flipped, so Close can wait
	// for them. A query enters under mu.RLock (check closed, then Add), and
	// Close flips closed under mu.Lock before Wait — so every Add is
	// ordered before the Wait that must observe it.
	closed   bool
	inflight sync.WaitGroup
}

// Open creates an engine.
func Open(cfg Config) (*Engine, error) {
	cc, err := cfg.toCacheConfig()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		datasets:   make(map[string]*plan.Dataset),
		manager:    cache.NewManager(cc),
		noVec:      cfg.DisableVectorized,
		noVecJoins: cfg.DisableVectorizedJoins,
		noPush:     cfg.DisablePushdown,
	}
	switch cfg.FreshnessMode {
	case "", "off":
		e.freshMode = "off"
	case "check", "check-on-access":
		e.freshMode = "check-on-access"
		e.freshCheck = true
	case "invalidate":
		e.freshMode = "invalidate"
		e.freshCheck = true
		e.freshInvalidate = true
	case "watch":
		e.freshMode = "watch"
		e.watchStop = make(chan struct{})
		e.watchDone.Add(1)
		go e.watchLoop(e.watchStop)
	default:
		return nil, fmt.Errorf("recache: unknown freshness mode %q", cfg.FreshnessMode)
	}
	e.ConfigureSharedScans(!cfg.DisableSharedScans, share.Config{Window: cfg.ShareWindow})
	return e, nil
}

// watchInterval is the watch-mode sweep cadence; it doubles as the
// freshness window RevalidateBatch skips within, so a dataset already
// stat'ed this interval (by a check-on-access query or a previous sweep
// running long) is not stat'ed again.
const watchInterval = 250 * time.Millisecond

// watchLoop is the "watch" freshness mode: it revalidates every registered
// dataset on a fixed cadence, off the query path. The whole sweep is one
// coalesced batch — the manager dedupes against datasets revalidated
// within the interval, so overlapping sweeps and query-path checks don't
// multiply stat calls. A revalidation failure already dropped the
// dataset's entries; the query that next touches the file reports the IO
// error itself.
func (e *Engine) watchLoop(stop chan struct{}) {
	defer e.watchDone.Done()
	tick := time.NewTicker(watchInterval)
	defer tick.Stop()
	for {
		select {
		case <-stop:
			return
		case <-tick.C:
			e.mu.RLock()
			dss := make([]*plan.Dataset, 0, len(e.datasets))
			for _, ds := range e.datasets {
				dss = append(dss, ds)
			}
			e.mu.RUnlock()
			e.manager.RevalidateBatch(dss, watchInterval)
		}
	}
}

// OpenWithManager creates an engine around a pre-configured cache manager.
// It exists for in-module tooling (the benchmark harness configures
// internal knobs such as eviction oracles); library users should call Open.
// The engine gets a default shared-scan coordinator; ConfigureSharedScans
// adjusts or disables it.
func OpenWithManager(m *cache.Manager) *Engine {
	e := &Engine{datasets: make(map[string]*plan.Dataset), manager: m}
	e.ConfigureSharedScans(true, share.Config{})
	return e
}

// ConfigureSharedScans rebuilds the engine's shared-scan coordinator with
// cfg, or removes it (enabled == false: every miss scans privately, the
// pre-work-sharing ablation). The coordinator's OnShared hook is wired to
// the manager's SharedScans/SharedConsumers counters here, so CacheStats
// stays consistent. For in-module tooling and tests. Safe to call while
// queries run: in-flight queries finish on the coordinator they captured,
// later queries use the new one (the old coordinator's counters are
// discarded; the manager's totals persist).
func (e *Engine) ConfigureSharedScans(enabled bool, cfg share.Config) {
	var coord *share.Coordinator
	if enabled {
		cfg.OnShared = e.manager.NoteSharedScan
		cfg.OnPushdown = e.manager.NotePushdown
		coord = share.New(cfg)
	}
	e.mu.Lock()
	e.share = coord
	e.mu.Unlock()
}

// Manager exposes the underlying cache manager for in-module tooling.
func (e *Engine) Manager() *cache.Manager { return e.manager }

// RegisterCSV registers a CSV file as a table. schema uses the ParseSchema
// DSL; an empty schema infers column types from the file (first row, '|'
// delimited unless delim says otherwise; a header row is detected when
// inference is used and every first-row field is a string).
func (e *Engine) RegisterCSV(name, path, schema string, delim byte) error {
	opts := csvio.Options{Delim: delim}
	var st *value.Type
	var err error
	if schema == "" {
		st, err = csvio.InferSchema(path, opts)
	} else {
		st, err = ParseSchema(schema)
	}
	if err != nil {
		return err
	}
	prov, err := csvio.New(path, st, opts)
	if err != nil {
		return err
	}
	return e.register(&plan.Dataset{Name: name, Format: plan.FormatCSV, Provider: prov})
}

// RegisterJSON registers a newline-delimited JSON file as a table; schema
// (ParseSchema DSL) is required because JSON structure is not sampled.
func (e *Engine) RegisterJSON(name, path, schema string) error {
	st, err := ParseSchema(schema)
	if err != nil {
		return err
	}
	prov, err := jsonio.New(path, st)
	if err != nil {
		return err
	}
	return e.register(&plan.Dataset{Name: name, Format: plan.FormatJSON, Provider: prov})
}

func (e *Engine) register(ds *plan.Dataset) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, dup := e.datasets[ds.Name]; dup {
		return fmt.Errorf("recache: table %q already registered", ds.Name)
	}
	e.datasets[ds.Name] = ds
	return nil
}

// RegisterProvider registers a custom scan provider as a table. It exists
// for in-module tooling and tests (counting or fault-injecting providers
// wrapped around the csvio/jsonio ones); library users should call
// RegisterCSV / RegisterJSON.
func (e *Engine) RegisterProvider(name string, format plan.Format, prov plan.ScanProvider) error {
	return e.register(&plan.Dataset{Name: name, Format: format, Provider: prov})
}

// AdmitReplica admits a peer-pushed RCS1 payload as a disk-tier cache
// entry for (table, predCanon). It is the receiving side of fleet
// replication: the key's owner ships each eager admission here so a shard
// death leaves a warm copy one rendezvous hop away. predCanon must be a
// canonical predicate string as produced by expr.Canonical ("true" or
// empty for an unconstrained entry); it is parsed back and re-canonicalized
// as a guard, so a payload can never be filed under a key its predicate
// doesn't mean. Admission is idempotent — a duplicate push or a key the
// local cache already built is dropped silently.
func (e *Engine) AdmitReplica(table, predCanon string, payload []byte) error {
	if err := e.beginQuery(); err != nil {
		return err
	}
	defer e.inflight.Done()
	e.mu.RLock()
	ds, ok := e.datasets[table]
	e.mu.RUnlock()
	if !ok {
		return fmt.Errorf("recache: replica push for unknown table %q", table)
	}
	var pred expr.Expr
	if predCanon == "" {
		predCanon = "true"
	}
	if predCanon != "true" {
		q, err := sqlparse.Parse("SELECT COUNT(*) FROM " + table + " WHERE " + predCanon)
		if err != nil {
			return fmt.Errorf("recache: replica predicate %q: %w", predCanon, err)
		}
		pred = q.Where
		if pred == nil || pred.Canonical() != predCanon {
			return fmt.Errorf("recache: replica predicate %q does not round-trip", predCanon)
		}
	}
	return e.manager.AdmitReplica(ds, pred, predCanon, payload)
}

// ExportEntries serializes every exportable eager cache entry (RAM or
// disk tier) and hands each (table, predCanon, RCS1 payload) to fn. A
// draining shard uses it to stream its working set to the new rendezvous
// owners before exiting; the payloads are byte-identical to what
// AdmitReplica accepts. Lazy entries are skipped — their offset lists are
// process-local. fn returning an error aborts the export.
func (e *Engine) ExportEntries(fn func(table, predCanon string, payload []byte) error) error {
	if err := e.beginQuery(); err != nil {
		return err
	}
	defer e.inflight.Done()
	return e.manager.ExportPayloads(fn)
}

// RawScans reports how many full raw-file scans the named table's provider
// has performed (the work-sharing bench metric: N concurrent cold misses
// should cost far fewer than N raw scans). It returns -1 when the table is
// unknown or its provider does not count scans.
func (e *Engine) RawScans(name string) int64 {
	e.mu.RLock()
	ds, ok := e.datasets[name]
	e.mu.RUnlock()
	if !ok {
		return -1
	}
	if sc, ok := ds.Provider.(interface{ Scans() int64 }); ok {
		return sc.Scans()
	}
	return -1
}

// RawPushdownStats reports the named table's provider-level pushdown
// counters: raw scans that evaluated a pushdown below parsing and the
// records those scans skipped before full decode. It returns (-1, -1) when
// the table is unknown or its provider does not count pushdown scans.
func (e *Engine) RawPushdownStats(name string) (scans, skipped int64) {
	e.mu.RLock()
	ds, ok := e.datasets[name]
	e.mu.RUnlock()
	if !ok {
		return -1, -1
	}
	if ps, ok := ds.Provider.(interface{ PushdownStats() (int64, int64) }); ok {
		return ps.PushdownStats()
	}
	return -1, -1
}

// Tables lists the registered table names.
func (e *Engine) Tables() []string {
	e.mu.RLock()
	defer e.mu.RUnlock()
	out := make([]string, 0, len(e.datasets))
	for n := range e.datasets {
		out = append(out, n)
	}
	sortStrings(out)
	return out
}

// TableSchema returns the schema DSL of a registered table.
func (e *Engine) TableSchema(name string) (string, error) {
	e.mu.RLock()
	ds, ok := e.datasets[name]
	e.mu.RUnlock()
	if !ok {
		return "", fmt.Errorf("recache: unknown table %q", name)
	}
	return FormatSchema(ds.Schema()), nil
}

// QueryStats reports the cost accounting of one query.
type QueryStats struct {
	// Wall is the end-to-end execution time.
	Wall time.Duration
	// CacheBuild is the caching overhead spent building cache entries.
	CacheBuild time.Duration
	// CacheScan is time spent reading from in-memory caches.
	CacheScan time.Duration
	// LayoutSwitch is time spent converting cache layouts.
	LayoutSwitch time.Duration
	// Overhead is CacheBuild / Wall (the paper's t_c/t_o).
	Overhead float64
	// Rows is the number of result rows.
	Rows int
}

// Result is a fully materialized query result. Row values are Go natives:
// int64, float64, string, bool, or nil for SQL NULL.
type Result struct {
	Columns []string
	Rows    [][]any
	Stats   QueryStats
}

// beginQuery admits one query against the engine lifecycle: it fails with
// ErrClosed once Close has begun, and otherwise registers the query so
// Close waits for it. The check-then-Add runs under mu.RLock while Close
// flips closed under mu.Lock before waiting, so every successful Add is
// ordered before the Wait that must observe it.
func (e *Engine) beginQuery() error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.inflight.Add(1)
	return nil
}

// Close shuts the engine down gracefully: queries submitted after Close
// begins fail with ErrClosed, in-flight queries run to completion, and
// queued disk-tier demotions are flushed so no evicted payload is lost
// between "queued for spill" and process exit. Close is idempotent and
// safe to call concurrently with queries; every call returns only once
// the engine is fully drained.
func (e *Engine) Close() error {
	e.mu.Lock()
	e.closed = true
	stop := e.watchStop
	e.watchStop = nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
	}
	e.watchDone.Wait()
	e.inflight.Wait()
	e.manager.FlushSpills()
	return nil
}

// prepare parses and plans one query and opens its cache transaction. The
// returned Txn pins every cache entry the rewrite hit (so eviction cannot
// free a store mid-scan) and reserved single-flight build slots for the
// misses; the caller must Close it even when execution fails.
func (e *Engine) prepare(sql string) (plan.Node, exec.Deps, *cache.Txn, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return nil, exec.Deps{}, nil, err
	}
	e.mu.RLock()
	pl, err := e.buildPlan(q)
	coord := e.share
	e.mu.RUnlock()
	if err != nil {
		return nil, exec.Deps{}, nil, err
	}
	if e.freshCheck {
		// Revalidate the query's datasets before the cache rewrite, so the
		// lookup below only matches entries consistent with the file's
		// current bytes. Errors are deliberately not surfaced here: a
		// failed revalidation already dropped the dataset's entries, and
		// the scan itself reports the underlying IO failure with context.
		seen := make(map[*plan.Dataset]bool)
		plan.Walk(pl.root, func(n plan.Node) {
			if sc, ok := n.(*plan.Scan); ok && !seen[sc.DS] {
				seen[sc.DS] = true
				e.manager.Revalidate(sc.DS, e.freshInvalidate)
			}
		})
	}
	tx := e.manager.Begin()
	root := tx.Rewrite(pl.root, pl.neededNames)
	deps := exec.Deps{
		Manager:                e.manager,
		Share:                  coord,
		Needed:                 pl.neededPaths,
		DisableVectorized:      e.noVec,
		DisableVectorizedJoins: e.noVecJoins,
		DisablePushdown:        e.noPush,
	}
	return root, deps, tx, nil
}

func toQueryStats(stats *exec.QueryStats) QueryStats {
	return QueryStats{
		Wall:         stats.Wall,
		CacheBuild:   time.Duration(stats.CacheBuildNanos),
		CacheScan:    time.Duration(stats.CacheScanNanos),
		LayoutSwitch: time.Duration(stats.LayoutSwitchNanos),
		Overhead:     stats.Overhead(),
		Rows:         stats.RowsOut,
	}
}

// epochRetries bounds how often one query restarts after losing a race
// with a concurrent file rewrite (a lazy replay failing with
// plan.ErrEpochChanged). Each retry re-plans against the reconciled
// cache, so a single retry usually suffices; the bound keeps a file being
// rewritten in a tight loop from starving the query forever.
const epochRetries = 3

// Query parses, plans, rewrites against the cache, and executes one SQL
// query. Query is safe to call from many goroutines at once; each call
// runs a private compiled pipeline against the shared cache. If the
// underlying file of a cache entry is rewritten mid-execution (freshness
// modes only), the query transparently retries against the reconciled
// cache.
func (e *Engine) Query(sql string) (*Result, error) {
	if err := e.beginQuery(); err != nil {
		return nil, err
	}
	defer e.inflight.Done()
	for retry := 0; ; retry++ {
		res, err := e.queryOnce(sql)
		if errors.Is(err, plan.ErrEpochChanged) && retry < epochRetries {
			continue
		}
		return res, err
	}
}

func (e *Engine) queryOnce(sql string) (*Result, error) {
	root, deps, tx, err := e.prepare(sql)
	if err != nil {
		return nil, err
	}
	defer tx.Close()
	res, stats, err := exec.Run(root, deps)
	if err != nil {
		return nil, err
	}
	out := &Result{
		Columns: res.Columns,
		Rows:    make([][]any, len(res.Rows)),
		Stats:   toQueryStats(stats),
	}
	for i, row := range res.Rows {
		out.Rows[i] = toNative(row)
	}
	return out, nil
}

// BatchResult is a query result kept columnar: the result rows live in a
// Parquet-layout store instead of boxed row slices. It is the zero-copy
// result shape for the wire path — store.WriteParquet serializes Store
// into the RCS1 frame the server ships, and the receiving client rebuilds
// an identical store with store.ReadParquetBytes against Schema.
type BatchResult struct {
	Columns []string
	// Schema is the result-record type (one field per output column).
	Schema *value.Type
	// Store holds the result rows in the Parquet layout.
	Store store.Store
	Stats QueryStats
}

// QueryColumnar executes one SQL query like Query but materializes the
// result as a columnar batch: rows stream from the vectorized pipeline
// straight into a Parquet-layout store builder, never boxing into []any.
// The serving layer uses this so a result crosses the wire as the same
// RCS1 bytes a disk spill would hold.
func (e *Engine) QueryColumnar(sql string) (*BatchResult, error) {
	if err := e.beginQuery(); err != nil {
		return nil, err
	}
	defer e.inflight.Done()
	for retry := 0; ; retry++ {
		res, err := e.queryColumnarOnce(sql)
		if errors.Is(err, plan.ErrEpochChanged) && retry < epochRetries {
			continue
		}
		return res, err
	}
}

func (e *Engine) queryColumnarOnce(sql string) (*BatchResult, error) {
	root, deps, tx, err := e.prepare(sql)
	if err != nil {
		return nil, err
	}
	defer tx.Close()
	schema := root.OutSchema()
	b, err := store.NewBuilder(store.LayoutParquet, schema)
	if err != nil {
		return nil, err
	}
	stats, err := exec.RunInto(root, deps, func(row []value.Value) error {
		// The builder stripes field values into typed column vectors, so
		// the reused row slice is not retained.
		return b.Add(value.Value{Kind: value.Record, L: row})
	})
	if err != nil {
		return nil, err
	}
	cols := make([]string, len(schema.Fields))
	for i, f := range schema.Fields {
		cols[i] = f.Name
	}
	return &BatchResult{
		Columns: cols,
		Schema:  schema,
		Store:   b.Finish(),
		Stats:   toQueryStats(stats),
	}, nil
}

// Explain returns the rewritten physical plan of a query as indented text,
// showing cache hits (CachedScan) and materializers. Raw Scan nodes are
// annotated with the dataset's live work-sharing state — consumers waiting
// in a gathering cycle, raw scans in flight, and the shared-scan /
// shared-consumer totals so far — so EXPLAIN shows whether the scan would
// attach to an in-flight shared cycle. Select nodes sitting directly on a
// raw Scan are annotated with the predicate split a miss would execute:
// the conjuncts pushed below parsing and the residual the pipeline still
// applies (e.g. "pushdown: [l_quantity>=20, l_quantity<=40]"). CachedScan
// nodes are annotated with the execution flavor the hit would take right
// now: "vectorized" plus the expected batch count when the entry's layout
// serves column batches, "row" otherwise. Explain is free of side effects:
// it performs the cache lookup through the manager's read-only path (and
// only reads coordinator state and entry payload snapshots), so reuse
// counters, hit/miss statistics, and eviction state are untouched.
func (e *Engine) Explain(sql string) (string, error) {
	q, err := sqlparse.Parse(sql)
	if err != nil {
		return "", err
	}
	e.mu.RLock()
	pl, err := e.buildPlan(q)
	coord := e.share
	noVec := e.noVec
	noVecJoins := e.noVecJoins
	noPush := e.noPush
	e.mu.RUnlock()
	if err != nil {
		return "", err
	}
	root := e.manager.Peek(pl.root, pl.neededNames)
	return plan.ExplainAnnotated(root, func(n plan.Node) string {
		switch x := n.(type) {
		case *plan.CachedScan:
			return vecNote(x, e.manager, noVec)
		case *plan.Join:
			return joinNote(x, e.manager, noVec, noVecJoins)
		case *plan.Select:
			return pushNote(x, noPush)
		case *plan.Scan:
			s := shareNote(coord, n)
			if f := freshNote(x, e.freshMode); f != "" {
				if s != "" {
					s += "; "
				}
				s += f
			}
			return s
		}
		return shareNote(coord, n)
	}), nil
}

// freshNote annotates a raw Scan with the engine's freshness mode and
// whether the dataset's provider tracks file versions at all. The note is
// static configuration — it never stats or loads the file, keeping
// EXPLAIN side-effect-free.
func freshNote(sc *plan.Scan, mode string) string {
	if mode == "" || mode == "off" {
		return ""
	}
	if _, ok := sc.DS.Provider.(plan.RefreshableProvider); !ok {
		return "freshness: untracked provider"
	}
	return "freshness: " + mode
}

// pushNote annotates a Select directly over a raw Scan with the predicate
// split pushdown would execute on a miss; empty for any other select.
func pushNote(sel *plan.Select, noPush bool) string {
	scan, ok := sel.Child.(*plan.Scan)
	if !ok || sel.Pred == nil {
		return ""
	}
	if noPush {
		return "pushdown: off"
	}
	pd, residual := expr.ExtractPushdown(sel.Pred, scan.DS.Schema())
	if pd == nil {
		return ""
	}
	s := "pushdown: " + pd.String()
	if residual != nil {
		s += ", residual: " + residual.Canonical()
	}
	return s
}

// vecNote annotates a CachedScan with its execution flavor and cache tier.
// A spilled entry's flavor is decided only after re-admission loads its
// store back, so the note carries the tier alone; RAM entries get the
// flavor plus "tier: ram". The probe stays side-effect-free: it reads the
// entry's payload snapshot and never triggers the disk load itself.
func vecNote(cs *plan.CachedScan, m *cache.Manager, noVec bool) string {
	if entry, ok := cs.Entry.(*cache.Entry); ok && m.EntryTier(entry) == "disk" {
		return "tier: disk (re-admitted)"
	}
	if noVec {
		return "row, tier: ram"
	}
	ok, batches := exec.VectorizedInfo(cs, m)
	if !ok {
		return "row, tier: ram"
	}
	return fmt.Sprintf("vectorized, %d batches, tier: ram", batches)
}

// joinNote annotates a Join with the flavor it would execute right now:
// the batch-native hash join ("join: vectorized" plus the expected probe
// batch count) when both inputs serve batches, "join: row" otherwise
// (disabled, raw-scan inputs, lazy entries, row layouts, expression keys).
func joinNote(j *plan.Join, m *cache.Manager, noVec, noVecJoins bool) string {
	ok, batches := exec.VectorizedJoinInfo(j, m, noVec, noVecJoins)
	if !ok {
		return "join: row"
	}
	return fmt.Sprintf("join: vectorized, %d probe batches", batches)
}

// shareNote annotates a raw Scan node with its dataset's shared-scan state;
// empty when the coordinator is off or has never coordinated the dataset.
func shareNote(coord *share.Coordinator, n plan.Node) string {
	sc, ok := n.(*plan.Scan)
	if !ok || coord == nil {
		return ""
	}
	waiting, running, cycles, consumers := coord.Status(sc.DS.Provider)
	if waiting == 0 && running == 0 && cycles == 0 {
		return ""
	}
	return fmt.Sprintf("shared-scan: %d waiting, %d running; %d cycles served %d consumers",
		waiting, running, cycles, consumers)
}

func toNative(row []value.Value) []any {
	out := make([]any, len(row))
	for i, v := range row {
		switch v.Kind {
		case value.Int:
			out[i] = v.I
		case value.Float:
			out[i] = v.F
		case value.String:
			out[i] = v.S
		case value.Bool:
			out[i] = v.B
		case value.Null:
			out[i] = nil
		default:
			out[i] = v.String()
		}
	}
	return out
}

// CacheStats summarizes cache behaviour since the engine opened.
type CacheStats struct {
	Queries        int64
	ExactHits      int64
	SubsumedHits   int64
	Misses         int64
	Evictions      int64
	LayoutSwitches int64
	LazyUpgrades   int64
	Inserted       int64
	// SharedScans counts work-sharing cycles (one raw parse each);
	// SharedConsumers counts the concurrent misses those cycles served, so
	// SharedConsumers − SharedScans raw scans were avoided.
	SharedScans     int64
	SharedConsumers int64
	// VectorizedScans counts cache scans served by the batch pipeline;
	// VectorizedBatches the column batches those scans pulled.
	VectorizedScans   int64
	VectorizedBatches int64
	// VectorizedJoins counts joins served end to end by the batch-native
	// hash join; JoinProbeBatches the probe-side batches they consumed.
	VectorizedJoins  int64
	JoinProbeBatches int64
	// PushdownScans counts raw scans that evaluated pushed conjuncts below
	// parsing; PushedConjuncts totals the conjuncts pushed, and
	// RecordsSkippedEarly the records rejected before full decode.
	PushdownScans       int64
	PushedConjuncts     int64
	RecordsSkippedEarly int64
	// Disk-tier counters (zero unless Config.SpillDir is set): Spills
	// counts spill-file writes (a re-admitted entry keeps its file, so its
	// later demotions are free and don't count), DiskHits the cache hits
	// served by re-admitting a spilled entry, SpillDrops the entries the
	// disk tier discarded for real; DiskEntries/DiskBytes snapshot the
	// tier's current occupancy in spill files (a file is retained across
	// re-admission, so a RAM-resident entry can still own one).
	DiskHits    int64
	Spills      int64
	SpillDrops  int64
	DiskEntries int
	DiskBytes   int64
	// Freshness counters (zero unless Config.FreshnessMode enables
	// revalidation): StaleInvalidations counts entries dropped because
	// their raw file was rewritten or truncated, TailExtensions the
	// entries extended in place over an appended tail, and
	// TailBytesScanned the appended bytes those revalidations parsed —
	// the work an append costs instead of a full re-scan.
	StaleInvalidations int64
	TailExtensions     int64
	TailBytesScanned   int64
	Entries            int
	TotalBytes         int64
	// OpenTxns gauges query transactions begun but not yet closed. Every
	// cache-entry pin lives inside a transaction, so a drained engine (or
	// server) asserts quiescence as OpenTxns == 0.
	OpenTxns int64
}

// CacheStats returns a snapshot of the cache counters. The counters are
// maintained atomically, so the snapshot is safe to take while queries are
// running (individual counters are exact; the set is weakly consistent).
func (e *Engine) CacheStats() CacheStats {
	s := e.manager.Stats()
	return CacheStats{
		Queries:             s.Queries,
		ExactHits:           s.ExactHits,
		SubsumedHits:        s.SubsumedHits,
		Misses:              s.Misses,
		Evictions:           s.Evictions,
		LayoutSwitches:      s.LayoutSwitches,
		LazyUpgrades:        s.LazyUpgrades,
		Inserted:            s.Inserted,
		SharedScans:         s.SharedScans,
		SharedConsumers:     s.SharedConsumers,
		VectorizedScans:     s.VectorizedScans,
		VectorizedBatches:   s.VectorizedBatches,
		VectorizedJoins:     s.VectorizedJoins,
		JoinProbeBatches:    s.JoinProbeBatches,
		PushdownScans:       s.PushdownScans,
		PushedConjuncts:     s.PushedConjuncts,
		RecordsSkippedEarly: s.RecordsSkippedEarly,
		DiskHits:            s.DiskHits,
		Spills:              s.Spills,
		SpillDrops:          s.SpillDrops,
		DiskEntries:         s.DiskEntries,
		DiskBytes:           s.DiskBytes,
		StaleInvalidations:  s.StaleInvalidations,
		TailExtensions:      s.TailExtensions,
		TailBytesScanned:    s.TailBytesScanned,
		Entries:             s.Entries,
		TotalBytes:          s.TotalBytes,
		OpenTxns:            s.OpenTxns,
	}
}

// EntryInfo describes one live cache entry.
type EntryInfo struct {
	ID        uint64
	Table     string
	Predicate string
	Mode      string // "eager" or "lazy"
	Layout    string // "parquet", "columnar", "row", "offsets", or "disk"
	Bytes     int64  // RAM footprint; spill-file bytes for disk entries
	Reuses    int64
}

// CacheEntries lists the live cache entries (sorted by id). The returned
// snapshot is taken under the cache lock, so it is safe to call while
// queries are running.
func (e *Engine) CacheEntries() []EntryInfo {
	views := e.manager.Snapshot()
	out := make([]EntryInfo, len(views))
	for i, v := range views {
		layout := "offsets"
		if v.Mode == cache.Eager && v.HasStore {
			layout = v.Layout.String()
		} else if v.OnDisk {
			layout = "disk"
		}
		out[i] = EntryInfo{
			ID:        v.ID,
			Table:     v.Dataset,
			Predicate: v.PredCanon,
			Mode:      v.Mode.String(),
			Layout:    layout,
			Bytes:     v.Bytes,
			Reuses:    v.Reuses,
		}
	}
	return out
}
