package recache

import (
	"fmt"
	"strings"

	"recache/internal/value"
)

// ParseSchema parses the schema DSL used when registering datasets:
//
//	"okey int, total float, comment string?,
//	 origin record(country string?, ip string?),
//	 lineitems list(qty int, price float),
//	 tags list(string)"
//
// Primitive types are int, float, string and bool; a trailing '?' marks the
// field optional (it may be absent from JSON objects). list(...) with a
// field list is a list of records; list(<type>) is a list of primitives;
// record(...) is a nested record. At most one list field may appear on any
// root-to-leaf path (the storage layer's single-repeated-field rule).
func ParseSchema(src string) (*value.Type, error) {
	p := &schemaParser{src: src}
	t, err := p.parseFieldList()
	if err != nil {
		return nil, err
	}
	p.skipSpace()
	if p.pos < len(p.src) {
		return nil, fmt.Errorf("recache: schema: trailing input at %d: %q", p.pos, p.src[p.pos:])
	}
	// Validate the single-repeated-field constraint early.
	if _, err := value.LeafColumns(t); err != nil {
		return nil, fmt.Errorf("recache: schema: %w", err)
	}
	return t, nil
}

type schemaParser struct {
	src string
	pos int
}

func (p *schemaParser) skipSpace() {
	for p.pos < len(p.src) {
		switch p.src[p.pos] {
		case ' ', '\t', '\n', '\r':
			p.pos++
		default:
			return
		}
	}
}

func (p *schemaParser) ident() string {
	p.skipSpace()
	start := p.pos
	for p.pos < len(p.src) {
		c := p.src[p.pos]
		if c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9') {
			p.pos++
		} else {
			break
		}
	}
	return p.src[start:p.pos]
}

func (p *schemaParser) accept(c byte) bool {
	p.skipSpace()
	if p.pos < len(p.src) && p.src[p.pos] == c {
		p.pos++
		return true
	}
	return false
}

func (p *schemaParser) parseFieldList() (*value.Type, error) {
	var fields []value.Field
	for {
		name := p.ident()
		if name == "" {
			return nil, fmt.Errorf("recache: schema: expected field name at %d", p.pos)
		}
		t, opt, err := p.parseType()
		if err != nil {
			return nil, err
		}
		fields = append(fields, value.Field{Name: name, Type: t, Optional: opt})
		if !p.accept(',') {
			break
		}
	}
	return value.TRecord(fields...), nil
}

func (p *schemaParser) parseType() (*value.Type, bool, error) {
	kw := strings.ToLower(p.ident())
	var t *value.Type
	switch kw {
	case "int":
		t = value.TInt
	case "float", "double":
		t = value.TFloat
	case "string", "text":
		t = value.TString
	case "bool", "boolean":
		t = value.TBool
	case "record":
		if !p.accept('(') {
			return nil, false, fmt.Errorf("recache: schema: record requires '(' at %d", p.pos)
		}
		inner, err := p.parseFieldList()
		if err != nil {
			return nil, false, err
		}
		if !p.accept(')') {
			return nil, false, fmt.Errorf("recache: schema: missing ')' at %d", p.pos)
		}
		t = inner
	case "list":
		if !p.accept('(') {
			return nil, false, fmt.Errorf("recache: schema: list requires '(' at %d", p.pos)
		}
		// list(<primitive>) or list(<field list>).
		save := p.pos
		kw2 := strings.ToLower(p.ident())
		p.skipSpace()
		isPrim := (kw2 == "int" || kw2 == "float" || kw2 == "double" || kw2 == "string" ||
			kw2 == "text" || kw2 == "bool" || kw2 == "boolean") &&
			p.pos < len(p.src) && p.src[p.pos] == ')'
		p.pos = save
		if isPrim {
			elem, _, err := p.parseType()
			if err != nil {
				return nil, false, err
			}
			if !p.accept(')') {
				return nil, false, fmt.Errorf("recache: schema: missing ')' at %d", p.pos)
			}
			t = value.TList(elem)
		} else {
			inner, err := p.parseFieldList()
			if err != nil {
				return nil, false, err
			}
			if !p.accept(')') {
				return nil, false, fmt.Errorf("recache: schema: missing ')' at %d", p.pos)
			}
			t = value.TList(inner)
		}
	case "":
		return nil, false, fmt.Errorf("recache: schema: expected type at %d", p.pos)
	default:
		return nil, false, fmt.Errorf("recache: schema: unknown type %q", kw)
	}
	opt := p.accept('?')
	return t, opt, nil
}

// FormatSchema renders a schema back into the DSL (approximately inverse to
// ParseSchema; used by the CLI's \d command).
func FormatSchema(t *value.Type) string {
	var b strings.Builder
	writeSchemaFields(&b, t)
	return b.String()
}

func writeSchemaFields(b *strings.Builder, t *value.Type) {
	for i, f := range t.Fields {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(f.Name)
		b.WriteByte(' ')
		writeSchemaType(b, f.Type)
		if f.Optional {
			b.WriteByte('?')
		}
	}
}

func writeSchemaType(b *strings.Builder, t *value.Type) {
	switch t.Kind {
	case value.Record:
		b.WriteString("record(")
		writeSchemaFields(b, t)
		b.WriteByte(')')
	case value.List:
		b.WriteString("list(")
		if t.Elem.Kind == value.Record {
			writeSchemaFields(b, t.Elem)
		} else {
			writeSchemaType(b, t.Elem)
		}
		b.WriteByte(')')
	default:
		b.WriteString(t.Kind.String())
	}
}
