package recache

// Engine-level work-sharing tests (run with -race): N concurrent identical
// cold queries on one dataset must pay for exactly one raw-file parse per
// batch cycle, piggybacking the single-flight cache build on the shared
// scan, while every query still returns correct rows.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"recache/internal/csvio"
	"recache/internal/plan"
	"recache/internal/share"
	"recache/internal/value"
)

// gateProvider wraps a real provider, reporting each full-file Scan start
// on started and holding it until a token arrives on gate — so tests can
// freeze a raw scan at a deterministic point while a burst gathers.
type gateProvider struct {
	plan.ScanProvider
	started chan int      // receives the scan ordinal as each Scan begins
	gate    chan struct{} // one token consumed per Scan before it proceeds
	scans   atomic.Int64
}

func (g *gateProvider) Scan(needed []value.Path, fn plan.ScanFunc) error {
	n := g.scans.Add(1)
	g.started <- int(n)
	<-g.gate
	return g.ScanProvider.Scan(needed, fn)
}

// Scans lets Engine.RawScans count through the wrapper.
func (g *gateProvider) Scans() int64 { return g.scans.Load() }

// gatedEngine builds an engine whose table "t" sits behind a gateProvider
// and whose coordinator uses a long batching window (the tests seal cycles
// via the early-seal path, deterministically, never via the timer).
func gatedEngine(t *testing.T) (*Engine, *gateProvider) {
	t.Helper()
	eng, err := Open(Config{Admission: "eager"})
	if err != nil {
		t.Fatal(err)
	}
	eng.ConfigureSharedScans(true, share.Config{Window: 30 * time.Second})
	csv := "1|10|1.5|aa\n2|20|2.5|bb\n3|30|3.5|cc\n4|40|4.5|dd\n5|50|5.5|ee\n"
	schema, err := ParseSchema("id int, qty int, price float, name string")
	if err != nil {
		t.Fatal(err)
	}
	base, err := csvio.New(writeTemp(t, "t.csv", csv), schema, csvio.Options{Delim: '|'})
	if err != nil {
		t.Fatal(err)
	}
	gp := &gateProvider{ScanProvider: base, started: make(chan int, 8), gate: make(chan struct{}, 8)}
	if err := eng.RegisterProvider("t", plan.FormatCSV, gp); err != nil {
		t.Fatal(err)
	}
	return eng, gp
}

func waitForShare(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timeout waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// The acceptance-criterion test: while one cold query's raw scan is in
// flight, a burst of N concurrent identical cold queries must gather into
// ONE batch cycle — the raw file is parsed exactly once for the whole
// burst (asserted via the provider scan counter), the single-flight build
// piggybacks on that shared scan, and all N queries return correct rows.
func TestSharedScanBurstParsesOncePerCycle(t *testing.T) {
	for _, n := range []int{4, 16} {
		t.Run(fmt.Sprintf("N=%d", n), func(t *testing.T) {
			eng, gp := gatedEngine(t)

			// Q0: a cold query on its own predicate, frozen mid-scan so the
			// dataset has a raw scan in flight when the burst arrives.
			q0done := make(chan error, 1)
			go func() {
				_, err := eng.Query("SELECT COUNT(*) FROM t WHERE qty BETWEEN 10 AND 20")
				q0done <- err
			}()
			if s := <-gp.started; s != 1 {
				t.Fatalf("first scan ordinal = %d", s)
			}

			// The burst: N identical cold queries on a different predicate.
			q := "SELECT COUNT(*) FROM t WHERE qty BETWEEN 15 AND 45"
			results := make([]int64, n)
			errs := make([]error, n)
			var wg sync.WaitGroup
			for i := 0; i < n; i++ {
				wg.Add(1)
				go func(i int) {
					defer wg.Done()
					res, err := eng.Query(q)
					if err != nil {
						errs[i] = err
						return
					}
					results[i] = res.Rows[0][0].(int64)
				}(i)
			}
			waitForShare(t, "the burst to gather into one cycle", func() bool {
				waiting, _, _, _ := eng.share.Status(gp)
				return waiting == n
			})

			gp.gate <- struct{}{} // release Q0; the cycle seals early
			if s := <-gp.started; s != 2 {
				t.Fatalf("burst cycle scan ordinal = %d, want 2", s)
			}
			gp.gate <- struct{}{} // release the one shared scan
			wg.Wait()
			if err := <-q0done; err != nil {
				t.Fatal(err)
			}
			for i := 0; i < n; i++ {
				if errs[i] != nil {
					t.Fatal(errs[i])
				}
				if results[i] != 3 {
					t.Errorf("query %d count = %d, want 3", i, results[i])
				}
			}

			// One parse for Q0 + exactly one parse for the whole N-burst.
			if got := gp.scans.Load(); got != 2 {
				t.Errorf("raw file parsed %d times, want 2 (Q0 + one shared cycle for all %d misses)", got, n)
			}
			if got := eng.RawScans("t"); got != 2 {
				t.Errorf("Engine.RawScans = %d, want 2", got)
			}
			st := eng.CacheStats()
			if st.SharedScans != 1 || st.SharedConsumers != int64(n) {
				t.Errorf("shared counters = %d cycles / %d consumers, want 1 / %d",
					st.SharedScans, st.SharedConsumers, n)
			}
			// Single-flight still holds on top of work sharing: Q0's entry
			// plus exactly one entry for the burst predicate.
			if st.Inserted != 2 {
				t.Errorf("inserted = %d, want 2", st.Inserted)
			}
			if got := st.ExactHits + st.SubsumedHits + st.Misses; got != st.Queries {
				t.Errorf("stats invariant broken: %+v", st)
			}
		})
	}
}

// A lone cold query must bypass the coordinator: private scan, no batching
// window, no shared cycle — the pre-work-sharing miss path.
func TestSharedScanSingleConsumerBypass(t *testing.T) {
	eng := testEngine(t, Config{Admission: "eager"})
	res, err := eng.Query("SELECT COUNT(*) FROM t WHERE qty BETWEEN 15 AND 45")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 3 {
		t.Fatalf("count = %v", res.Rows[0][0])
	}
	if st := eng.CacheStats(); st.SharedScans != 0 || st.SharedConsumers != 0 {
		t.Errorf("lone query used a shared cycle: %+v", st)
	}
	ss := eng.share.Stats()
	if ss.PrivateScans == 0 {
		t.Error("lone query did not take the private fast path")
	}
	if got := eng.RawScans("t"); got != 1 {
		t.Errorf("raw scans = %d, want 1", got)
	}
}

// Disabling the coordinator restores fully private scans and still answers
// correctly.
func TestSharedScanDisabled(t *testing.T) {
	eng := testEngine(t, Config{Admission: "eager", DisableSharedScans: true})
	if eng.share != nil {
		t.Fatal("DisableSharedScans left a coordinator in place")
	}
	res, err := eng.Query("SELECT COUNT(*) FROM t WHERE qty BETWEEN 15 AND 45")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0].(int64) != 3 {
		t.Errorf("count = %v", res.Rows[0][0])
	}
	if st := eng.CacheStats(); st.SharedScans != 0 {
		t.Errorf("shared scans = %d with sharing disabled", st.SharedScans)
	}
}

// Explain must annotate a raw Scan with the dataset's live shared-scan
// state — and stay side-effect free while doing so.
func TestExplainShowsSharedScanState(t *testing.T) {
	eng, gp := gatedEngine(t)

	// Before any coordination: no annotation.
	out, err := eng.Explain("SELECT COUNT(*) FROM t WHERE qty > 25")
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(out, "shared-scan") {
		t.Errorf("idle dataset annotated:\n%s", out)
	}

	// Freeze one scan and gather two waiters (different predicates — a
	// cycle shares across predicates); Explain must show the live state.
	q0done := make(chan error, 1)
	go func() {
		_, err := eng.Query("SELECT COUNT(*) FROM t WHERE qty BETWEEN 10 AND 20")
		q0done <- err
	}()
	<-gp.started
	waiterDone := make(chan error, 2)
	go func() {
		_, err := eng.Query("SELECT COUNT(*) FROM t WHERE qty BETWEEN 15 AND 45")
		waiterDone <- err
	}()
	go func() {
		_, err := eng.Query("SELECT COUNT(*) FROM t WHERE qty >= 40")
		waiterDone <- err
	}()
	waitForShare(t, "the waiters to gather", func() bool {
		waiting, _, _, _ := eng.share.Status(gp)
		return waiting == 2
	})
	before := eng.CacheStats()
	out, err = eng.Explain("SELECT COUNT(*) FROM t WHERE qty < 15")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "shared-scan: 2 waiting, 1 running") {
		t.Errorf("explain missing live shared-scan state:\n%s", out)
	}
	if after := eng.CacheStats(); after != before {
		t.Errorf("Explain mutated stats:\nbefore %+v\nafter  %+v", before, after)
	}

	gp.gate <- struct{}{}
	<-gp.started
	gp.gate <- struct{}{}
	if err := <-q0done; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-waiterDone; err != nil {
			t.Fatal(err)
		}
	}

	// After the cycle: the per-dataset totals show up.
	out, err = eng.Explain("SELECT COUNT(*) FROM t WHERE qty < 15")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1 cycles served 2 consumers") {
		t.Errorf("explain missing shared-scan totals:\n%s", out)
	}
}
