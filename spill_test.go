package recache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// spillCSV writes an n-row CSV whose per-row values are exactly
// representable in float64, so cached and raw execution sum identically.
func spillCSV(t testing.TB, n int) string {
	t.Helper()
	var sb strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&sb, "%d|%d|%d\n", i, i%100, i%500)
	}
	dir, err := os.MkdirTemp("", "recache-spill-test")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.RemoveAll(dir) })
	path := filepath.Join(dir, "big.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func spillEngine(t testing.TB, path string, cfg Config) *Engine {
	t.Helper()
	eng, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RegisterCSV("big", path, "id int, qty int, price float", '|'); err != nil {
		t.Fatal(err)
	}
	return eng
}

// TestTieredCacheDifferential runs a working set ~10× the RAM budget
// through a spill-enabled engine and checks every result against a
// no-cache baseline: entries must churn through the disk tier (spills and
// disk hits observed) without ever changing an answer.
func TestTieredCacheDifferential(t *testing.T) {
	const rows, ranges, span = 10000, 10, 1000
	path := spillCSV(t, rows)
	base := spillEngine(t, path, Config{Admission: "off"})
	tiered := spillEngine(t, path, Config{
		Admission:     "eager",
		Layout:        "columnar",
		CacheCapacity: 26 << 10, // roughly one entry: working set ~10× this
		SpillDir:      filepath.Join(t.TempDir(), "spill"),
	})

	check := func(q string) {
		t.Helper()
		want, err := base.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		got, err := tiered.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got.Rows, want.Rows) {
			t.Fatalf("%s:\n  tiered  %v\n  nocache %v", q, got.Rows, want.Rows)
		}
	}

	// Round 1 builds one entry per range (most spill under the tiny RAM
	// budget); round 2 repeats exactly (disk hits re-admit); round 3 asks
	// narrower ranges (subsumption must still match spilled entries).
	for i := 0; i < ranges; i++ {
		check(fmt.Sprintf("SELECT SUM(price), COUNT(*) FROM big WHERE id BETWEEN %d AND %d",
			i*span, i*span+span-1))
	}
	for i := 0; i < ranges; i++ {
		check(fmt.Sprintf("SELECT SUM(price), COUNT(*) FROM big WHERE id BETWEEN %d AND %d",
			i*span, i*span+span-1))
	}
	for i := 0; i < ranges; i++ {
		check(fmt.Sprintf("SELECT SUM(qty), COUNT(*) FROM big WHERE id BETWEEN %d AND %d",
			i*span+100, i*span+span-101))
	}

	st := tiered.CacheStats()
	if st.Spills == 0 {
		t.Error("working set 10× the RAM budget never spilled")
	}
	if st.DiskHits == 0 {
		t.Error("repeated queries never hit the disk tier")
	}
	if st.DiskBytes < 0 || st.TotalBytes < 0 {
		t.Errorf("accounting went negative: %+v", st)
	}
}

// TestExplainShowsTier: EXPLAIN annotates a CachedScan with the tier its
// entry currently occupies, and re-admission moves the note back to RAM.
func TestExplainShowsTier(t *testing.T) {
	path := spillCSV(t, 5000)
	eng := spillEngine(t, path, Config{
		Admission:     "eager",
		Layout:        "columnar",
		CacheCapacity: 20 << 10,
		SpillDir:      filepath.Join(t.TempDir(), "spill"),
	})
	qa := "SELECT SUM(price) FROM big WHERE id BETWEEN 0 AND 499"
	qb := "SELECT SUM(price) FROM big WHERE id BETWEEN 2000 AND 2499"
	if _, err := eng.Query(qa); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Query(qb); err != nil {
		t.Fatal(err)
	}
	// The two entries exceed the ~one-entry budget, so exactly one of them
	// was demoted to disk; EXPLAIN must annotate each with its tier. (The
	// policy breaks the tie between two never-reused entries either way.)
	explain := func(q string) string {
		t.Helper()
		out, err := eng.Explain(q)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	diskQ := ""
	for _, q := range []string{qa, qb} {
		out := explain(q)
		switch {
		case strings.Contains(out, "tier: disk (re-admitted)"):
			if diskQ != "" {
				t.Fatalf("both entries on disk:\n%s", out)
			}
			diskQ = q
		case strings.Contains(out, "tier: ram"):
		default:
			t.Fatalf("explain missing tier annotation:\n%s", out)
		}
	}
	if diskQ == "" {
		t.Fatal("no entry was demoted to disk")
	}
	// Executing the spilled query re-admits its entry (a disk hit), which
	// in turn demotes the other under the same budget; the annotations must
	// follow the state: still exactly one disk, one RAM.
	if _, err := eng.Query(diskQ); err != nil {
		t.Fatal(err)
	}
	disk, ram := 0, 0
	for _, q := range []string{qa, qb} {
		out := explain(q)
		if strings.Contains(out, "tier: disk (re-admitted)") {
			disk++
		}
		if strings.Contains(out, "tier: ram") {
			ram++
		}
	}
	if disk != 1 || ram != 1 {
		t.Errorf("after re-admission: %d disk, %d ram annotations (want 1 and 1)", disk, ram)
	}
	st := eng.CacheStats()
	if st.Spills == 0 || st.DiskHits == 0 {
		t.Errorf("expected spill + disk hit, got %+v", st)
	}
}

// BenchmarkSpillReadmit measures the disk-tier round trip: two entries
// alternating through a one-entry RAM budget, so every query re-admits one
// entry from disk and demotes the other.
func BenchmarkSpillReadmit(b *testing.B) {
	path := spillCSV(b, 20000)
	eng := spillEngine(b, path, Config{
		Admission:     "eager",
		Layout:        "columnar",
		CacheCapacity: 30 << 10,
		SpillDir:      filepath.Join(b.TempDir(), "spill"),
	})
	qa := "SELECT SUM(price), COUNT(*) FROM big WHERE id BETWEEN 0 AND 999"
	qb := "SELECT SUM(price), COUNT(*) FROM big WHERE id BETWEEN 10000 AND 10999"
	for _, q := range []string{qa, qb} {
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := qa
		if i%2 == 1 {
			q = qb
		}
		if _, err := eng.Query(q); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := eng.CacheStats()
	b.ReportMetric(float64(st.DiskHits)/float64(b.N), "disk-hits/op")
}
