package recache

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
)

// vecCorpus is the engine-level differential corpus: every query shape the
// executor supports, exercised against the same two tables testEngine
// registers. Each query runs at least twice per engine, so both the miss
// (materialize) and the hit (cache scan) paths are compared.
func vecCorpus() []string {
	return []string{
		// Flat aggregates: exact hits, subsumption, empty results.
		"SELECT SUM(price) AS s, COUNT(*) FROM t WHERE qty BETWEEN 20 AND 40",
		"SELECT SUM(price), COUNT(*) FROM t WHERE qty BETWEEN 25 AND 35",
		"SELECT MIN(price), MAX(name), AVG(qty), COUNT(id) FROM t WHERE qty >= 20",
		"SELECT COUNT(*) FROM t WHERE qty > 1000",
		"SELECT SUM(qty) FROM t",
		// Group by (string and int keys).
		"SELECT name, COUNT(*) AS n FROM t GROUP BY name",
		"SELECT qty, SUM(price), MIN(name) FROM t WHERE id >= 2 GROUP BY qty",
		// Projections (vectorized column permutation).
		"SELECT name, price FROM t WHERE qty > 35",
		"SELECT price, id, name FROM t WHERE qty BETWEEN 10 AND 50",
		// Nested data: record granularity (Parquet fast path batches) and
		// flattened granularity (FSM row fallback), plus mixed predicates.
		"SELECT SUM(total), COUNT(*) FROM orders WHERE okey >= 2",
		"SELECT SUM(items.price), COUNT(*) FROM orders WHERE items.qty >= 3",
		"SELECT COUNT(*) FROM orders WHERE total >= 100 AND items.qty >= 2",
		"SELECT okey, total FROM orders WHERE total > 150",
		// Joins: cached scans feed the row-path join through the batch→row
		// boundary.
		"SELECT COUNT(*), SUM(price) FROM t JOIN orders ON id = okey WHERE total > 150",
	}
}

// TestVectorizedEngineParity runs the corpus through a vectorized engine, a
// row-path engine, and a no-cache baseline, across admission and layout
// configurations: all three must agree on every query, on the miss and on
// the hits.
func TestVectorizedEngineParity(t *testing.T) {
	configs := []Config{
		{Admission: "eager"},
		{Admission: "eager", Layout: "columnar"},
		{Admission: "eager", Layout: "parquet"},
		{Admission: "eager", Layout: "row"},
		{Admission: "lazy"},
		{Admission: "adaptive", AdmissionSampleSize: 2},
	}
	// Baseline: caching off (vectorization never applies).
	base := testEngine(t, Config{Admission: "off"})
	var want [][][]any
	for _, q := range vecCorpus() {
		res, err := base.Query(q)
		if err != nil {
			t.Fatalf("baseline %q: %v", q, err)
		}
		want = append(want, res.Rows)
	}
	for _, cfg := range configs {
		vecCfg, rowCfg := cfg, cfg
		rowCfg.DisableVectorized = true
		engVec := testEngine(t, vecCfg)
		engRow := testEngine(t, rowCfg)
		for pass := 0; pass < 3; pass++ {
			for qi, q := range vecCorpus() {
				rv, err := engVec.Query(q)
				if err != nil {
					t.Fatalf("cfg %+v pass %d %q (vec): %v", cfg, pass, q, err)
				}
				rr, err := engRow.Query(q)
				if err != nil {
					t.Fatalf("cfg %+v pass %d %q (row): %v", cfg, pass, q, err)
				}
				if !reflect.DeepEqual(rv.Rows, want[qi]) {
					t.Errorf("cfg %+v pass %d %q: vectorized %v, want %v", cfg, pass, q, rv.Rows, want[qi])
				}
				if !reflect.DeepEqual(rr.Rows, want[qi]) {
					t.Errorf("cfg %+v pass %d %q: row %v, want %v", cfg, pass, q, rr.Rows, want[qi])
				}
			}
		}
		if engRow.CacheStats().VectorizedScans != 0 {
			t.Errorf("cfg %+v: DisableVectorized engine ran %d vectorized scans",
				cfg, engRow.CacheStats().VectorizedScans)
		}
	}
}

// TestVectorizedConcurrentHits replays warmed corpus queries from many
// goroutines against one shared vectorized engine (run under -race in CI):
// every result must match the single-threaded answers, and the batch
// pipeline must actually have served hits.
func TestVectorizedConcurrentHits(t *testing.T) {
	eng := testEngine(t, Config{Admission: "eager"})
	queries := vecCorpus()
	want := make(map[string][][]any, len(queries))
	for _, q := range queries {
		res, err := eng.Query(q)
		if err != nil {
			t.Fatal(err)
		}
		want[q] = res.Rows
	}
	const workers, iters = 8, 30
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := eng.Query(q)
				if err != nil {
					errs <- fmt.Errorf("%q: %w", q, err)
					return
				}
				if !reflect.DeepEqual(res.Rows, want[q]) {
					errs <- fmt.Errorf("%q: %v, want %v", q, res.Rows, want[q])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	st := eng.CacheStats()
	if st.VectorizedScans == 0 {
		t.Error("concurrent hit replay used zero vectorized scans")
	}
	if st.VectorizedBatches < st.VectorizedScans {
		t.Errorf("batches %d < scans %d", st.VectorizedBatches, st.VectorizedScans)
	}
}

// TestExplainShowsVectorizedFlavor: EXPLAIN annotates CachedScan nodes with
// the flavor the hit would take — "vectorized, N batches" on a columnar
// entry, "row" when vectorization is disabled.
func TestExplainShowsVectorizedFlavor(t *testing.T) {
	q := "SELECT SUM(price), COUNT(*) FROM t WHERE qty BETWEEN 15 AND 45"
	eng := testEngine(t, Config{Admission: "eager"})
	if _, err := eng.Query(q); err != nil {
		t.Fatal(err)
	}
	out, err := eng.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CachedScan") || !strings.Contains(out, "vectorized, 1 batches") {
		t.Errorf("explain should mark the CachedScan vectorized with a batch count:\n%s", out)
	}

	off := testEngine(t, Config{Admission: "eager", DisableVectorized: true})
	if _, err := off.Query(q); err != nil {
		t.Fatal(err)
	}
	out, err = off.Explain(q)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "(row, tier: ram)") {
		t.Errorf("explain with vectorization disabled should mark the scan row:\n%s", out)
	}
}

// --- the acceptance benchmark ---

// benchVecEngine builds an engine over a generated CSV big enough that the
// scan flavor dominates: ~50k rows, selective predicate, aggregate on top.
func benchVecEngine(b *testing.B, disableVec bool) (*Engine, string) {
	b.Helper()
	const rows = 50000
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		fmt.Fprintf(&sb, "%d|%d|%d.%02d|n%d\n", i, i%100, i%500, i%100, i%7)
	}
	path := filepath.Join(b.TempDir(), "big.csv")
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		b.Fatal(err)
	}
	eng, err := Open(Config{Admission: "eager", Layout: "columnar", DisableVectorized: disableVec})
	if err != nil {
		b.Fatal(err)
	}
	if err := eng.RegisterCSV("big", path,
		"id int, qty int, price float, name string", '|'); err != nil {
		b.Fatal(err)
	}
	// Selective predicate (10% of rows) + aggregate: the shape the paper's
	// cache hits take, and the acceptance target's.
	q := "SELECT SUM(price), COUNT(*) FROM big WHERE qty BETWEEN 10 AND 19"
	if _, err := eng.Query(q); err != nil { // warm: build the entry
		b.Fatal(err)
	}
	return eng, q
}

// BenchmarkVectorizedCacheScan compares the two cache-hit pipeline flavors
// on a columnar-layout entry with a selective predicate and an aggregate.
// The acceptance bar is vectorized ≥ 2× row throughput.
func BenchmarkVectorizedCacheScan(b *testing.B) {
	b.Run("vectorized", func(b *testing.B) {
		eng, q := benchVecEngine(b, false)
		out, err := eng.Explain(q)
		if err != nil || !strings.Contains(out, "vectorized") {
			b.Fatalf("plan is not vectorized (err=%v):\n%s", err, out)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if eng.CacheStats().VectorizedScans < int64(b.N) {
			b.Fatalf("vectorized scans = %d, want >= %d", eng.CacheStats().VectorizedScans, b.N)
		}
	})
	b.Run("row", func(b *testing.B) {
		eng, q := benchVecEngine(b, true)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q); err != nil {
				b.Fatal(err)
			}
		}
	})
}
